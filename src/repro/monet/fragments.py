"""Horizontal BAT fragmentation with fragment-parallel kernel operators.

A :class:`FragmentedBAT` represents one logical BAT as an ordered list
of horizontal *fragments*, each a normal (usually void-headed)
:class:`repro.monet.bat.BAT`.  Fragmentation is the classic physical
lever for parallelism: the logical algebra is untouched, while the hot
kernel operators fan out over fragments on a shared
:class:`~concurrent.futures.ThreadPoolExecutor` (numpy releases the GIL
on its bulk paths) and the results are recombined in BUN order.

**Executor backends.**  The fan-out itself is pluggable through the
:class:`Backend` protocol.  :class:`ThreadBackend` (the default) is
the thread pool described above.  :class:`ProcessBackend` adds a lazy
``ProcessPoolExecutor`` (spawn context; fork-safe by construction) for
the operators threads cannot speed up: object-dtype (str) predicates
-- ``likeselect``, str equality/range selects, and the head-membership
probes and builds of ``semijoin``/``kdiff``/``kintersect``/``kunion``
-- hold the GIL for their whole Python-level scan, so under the thread
backend they serialize no matter how many fragments fan out.  Under
the process backend those *registered, picklable* per-fragment tasks
(:data:`repro.monet.kernel.FRAGMENT_TASKS`) run in worker processes:
the predicate column travels through :mod:`repro.monet.shm` (numeric
fragments map zero-copy out of ``multiprocessing.shared_memory``
segments; str fragments ship as length-prefixed encoded heaps and are
reconstructed in the worker), shared build sides broadcast once as
cached blobs, and only qualifying positions come back.  Everything
without a registered task -- all the GIL-releasing numeric work --
keeps fanning out on threads even under the process backend: that is
the **per-dtype calibration rule** (threads for numeric, processes for
object-dtype predicates above :data:`PROCESS_MIN_BUNS` BUNs), measured
by ``bench_fragments.calibrate()``.  Selection threads through
``REPRO_EXECUTOR_BACKEND`` / :func:`set_default_tuning` (persisted
with the other tuning fields in the BBP catalog) or per-plan via
``FragmentationPolicy(backend=...)``; both backends are BUN-identical
by contract, which the differential and fuzz suites assert over the
backend axis.  The process pool spawns on first use, survives only in
the process that created it (fork resets it), and shuts down cleanly
at exit without leaking shared-memory segments or semaphores.

Two split strategies are supported through
:class:`FragmentationPolicy`:

``range``
    contiguous BUN ranges of at most ``target_size`` BUNs.  Fragment
    order *is* BUN order, so recombination is plain concatenation.
``roundrobin``
    BUN ``i`` goes to fragment ``i % n_fragments``.  Each fragment
    remembers the global BUN positions of its rows so results can be
    merged back into BUN order.

Every operator here is the exact fragment-parallel counterpart of a
:mod:`repro.monet.kernel`, :mod:`repro.monet.groups` or
:mod:`repro.monet.aggregates` operator;
``tests/monet/test_fragment_differential.py`` asserts BUN-for-BUN
identity against the monolithic kernel and against naive pure-Python
references, ``tests/monet/test_mil_fragments.py`` does the same for
whole MIL programs, and ``tests/monet/test_mil_fuzz.py`` fuzzes the
composition space with randomized pipelines.  The operator set covers
everything the MIL dispatch layer (:mod:`repro.monet.mil.builtins`)
routes here -- including the order-sensitive operators
(``sort``/``tsort``, ``unique``/``kunique``/``tunique``, ``refine``),
whose per-fragment parallel passes meet in a **sample-sort merge**
(pivots cut the key space so every output partition builds
independently, in parallel; :func:`_sample_sort_merge`) or a
candidate-set resolution, and the set operators
(``kunion``/``kintersect``, plus the ``semijoin``/``kdiff`` fast
path), which probe a shared head-membership build
(:func:`_member_build`) per fragment -- so a pipeline like
``select -> kunion -> sort -> unique -> aggregate`` runs
fragment-parallel end-to-end with at most one coalesce at result
return.  The tuning defaults (fragment size, serial-execution floor,
merge fan-out) derive from the live core count and can be replaced by
measured values (:func:`set_default_tuning`; see the calibration pass
in ``benchmarks/bench_fragments.py``), which persist next to the BBP
catalog (:meth:`repro.monet.bbp.BATBufferPool.save`) so a restarted
server skips the measurement pass.

Property flags on recombined results are maintained *conservatively*:
a flag is only ``True`` when the concatenation provably preserves it
(e.g. consecutive void heads fuse back into one void head).
"""

from __future__ import annotations

import atexit
import heapq
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.monet import aggregates as _agg
from repro.monet import kernel as _kernel
from repro.monet import shm as _shm
from repro.monet.atoms import atom
from repro.monet.bat import (
    BAT,
    AnyColumn,
    Column,
    VoidColumn,
    _normalize_positions,
    bat_from_pairs,
    dense_bat,
)
from repro.monet.errors import InvalidMutationBatch, KernelError

try:
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - ancient stdlib layout
    BrokenProcessPool = OSError

def _derive_fragment_size(cores: Optional[int] = None) -> int:
    """Default BUN count per fragment, derived from the live core count.

    Two pressures: a fragment of int64 tails should stay inside an
    L2-sized working set (64Ki BUNs ~ 0.5 MB), and a moderately large
    BAT (1M BUNs) should still yield at least two fragments per core so
    the pool saturates.  Many-core hosts therefore get smaller
    fragments; the floor keeps per-fragment dispatch overhead
    negligible.  ``REPRO_FRAGMENT_SIZE`` overrides the derivation, and
    :func:`set_default_tuning` installs measured values (see the
    calibration pass in ``benchmarks/bench_fragments.py``).
    """
    cores = cores or os.cpu_count() or 1
    cache_resident = 64 * 1024
    saturating = (1 << 20) // max(1, 2 * cores)
    return max(8 * 1024, min(cache_resident, saturating))


def _derive_parallel_min(fragment_size: int, cores: Optional[int] = None) -> int:
    """Serial-execution floor, derived from the fragment size and core
    count: parallel dispatch starts paying off once a BAT spans a few
    fragments; with more cores the thread-pool cost amortizes earlier.
    ``REPRO_PARALLEL_MIN_BUNS`` overrides."""
    cores = cores or os.cpu_count() or 1
    return fragment_size * max(2, 8 // max(1, cores))


def _derive_merge_fanout(cores: Optional[int] = None) -> int:
    """Upper bound on the number of range partitions the sample-sort
    merge phase builds in parallel.  The cap is cache-driven at least
    as much as core-driven: even on one core, partition merges whose
    key+position working set stays L2-resident beat the old streaming
    tournament (measured ~1.37x -> ~1.17x single-core overhead on
    duplicate-heavy 1M-BUN sorts), so the floor is generous; extra
    cores raise it further for genuine parallelism.  The actual
    partition count also respects a ~64k-BUN-per-partition floor
    (:func:`_merge_partition_count`), so small BATs never shatter.
    ``REPRO_MERGE_FANOUT`` overrides the derivation, and
    :func:`set_default_tuning` installs measured values."""
    cores = cores or os.cpu_count() or 1
    return max(16, 4 * cores)


#: Default BUN count per fragment (cores-derived; see
#: :func:`_derive_fragment_size`).
DEFAULT_FRAGMENT_SIZE = (
    int(os.environ.get("REPRO_FRAGMENT_SIZE", 0)) or _derive_fragment_size()
)

#: Worker floor: even on a single-core host we keep two threads so the
#: fragment fan-out code path is always exercised.
DEFAULT_WORKERS = max(2, os.cpu_count() or 1)

#: Below this many total BUNs an operator runs its fragments serially
#: (unless a worker count is pinned): the numpy work is in the tens of
#: microseconds there and thread dispatch would dominate it.
PARALLEL_MIN_BUNS = (
    int(os.environ.get("REPRO_PARALLEL_MIN_BUNS", 0))
    or _derive_parallel_min(DEFAULT_FRAGMENT_SIZE)
)

#: Cap on sample-sort merge partitions (cores-derived; see
#: :func:`_derive_merge_fanout`).
MERGE_FANOUT = (
    int(os.environ.get("REPRO_MERGE_FANOUT", 0)) or _derive_merge_fanout()
)


def _derive_join_fanout(cores: Optional[int] = None) -> int:
    """Upper bound on the number of radix partitions of the grace hash
    join.  Same two pressures as the merge fan-out: enough partitions
    that the per-partition builds saturate the pool and their key
    working sets stay cache-resident, but not so many that dispatch
    and gather overhead dominate.  ``REPRO_JOIN_FANOUT`` overrides the
    derivation, and :func:`set_default_tuning` installs measured
    values (the ``--calibrate`` pass sweeps a few candidates)."""
    cores = cores or os.cpu_count() or 1
    return max(16, 4 * cores)


#: Cap on grace-join radix partitions (cores-derived; see
#: :func:`_derive_join_fanout`).  Read live, like ``MERGE_FANOUT``.
JOIN_FANOUT = int(os.environ.get("REPRO_JOIN_FANOUT", 0)) or _derive_join_fanout()

#: Partition floor of the grace join: roughly one radix partition per
#: this many build-side BUNs, so small builds never shatter into
#: per-partition dispatch overhead.  A module constant (not an env
#: knob): tests monkeypatch it to force multi-partition execution on
#: tiny inputs.
JOIN_PARTITION_MIN_BUNS = 64 * 1024

#: Build sides above this many BUNs spill their radix partitions to
#: disk as npz units through the BBP scratch directory
#: (:func:`repro.monet.bbp.write_spill_unit`) and are then processed
#: one partition at a time, so a BAT-x-BAT join's resident build state
#: is capped near this threshold instead of the whole build side.
#: ``REPRO_JOIN_SPILL_BUNS`` overrides -- ``0`` forces every
#: partitioned build to spill (what the spill-forced differential
#: tests pin); an unset/empty variable keeps the static default.
_JOIN_SPILL_ENV = os.environ.get("REPRO_JOIN_SPILL_BUNS")
JOIN_SPILL_BUNS = int(_JOIN_SPILL_ENV) if _JOIN_SPILL_ENV else 4 * 1024 * 1024

#: The executor backends an operator fan-out can run on.
BACKEND_NAMES = ("thread", "process")

#: Default executor backend.  ``thread`` is the historical behavior
#: and right for numpy's GIL-releasing numeric kernels; ``process``
#: additionally offloads the registered object-dtype (str) predicate
#: tasks to worker processes (see the module docstring).
#: ``REPRO_EXECUTOR_BACKEND`` overrides, and
#: :func:`set_default_tuning` installs calibrated values.
DEFAULT_BACKEND = os.environ.get("REPRO_EXECUTOR_BACKEND") or "thread"

#: Below this many total BUNs an object-dtype predicate stays on the
#: thread backend even when the process backend is selected: the
#: shared-memory export plus task dispatch has a fixed per-call cost
#: that only the larger Python-level scans amortize.
#: ``REPRO_PROCESS_MIN_BUNS`` overrides -- ``0`` disables the floor
#: (every eligible predicate offloads, which is what the differential
#: tests pin); an unset/empty variable keeps the static default until
#: ``bench_fragments.calibrate()`` measures the real crossover.
_PROCESS_MIN_ENV = os.environ.get("REPRO_PROCESS_MIN_BUNS")
PROCESS_MIN_BUNS = int(_PROCESS_MIN_ENV) if _PROCESS_MIN_ENV else 64 * 1024

#: Per-task result timeout (seconds) of the process backend; a worker
#: stuck past it degrades the backend to threads instead of hanging
#: the plan (and CI) forever.
PROCESS_TASK_TIMEOUT = float(os.environ.get("REPRO_PROCESS_TASK_TIMEOUT", 0) or 120.0)

#: True once :func:`set_default_tuning` installed measured values (as
#: opposed to the cores-derived defaults above).  Measured tuning is
#: worth persisting: :meth:`repro.monet.bbp.BATBufferPool.save` writes
#: it next to the catalog and ``load`` reinstalls it, so a restarted
#: server skips the measurement pass.
_TUNING_MEASURED = False


def set_default_tuning(
    *,
    fragment_size: Optional[int] = None,
    parallel_min: Optional[int] = None,
    merge_fanout: Optional[int] = None,
    backend: Optional[str] = None,
    process_min: Optional[int] = None,
    join_fanout: Optional[int] = None,
    join_spill: Optional[int] = None,
) -> None:
    """Install measured tuning values for the module defaults.

    The calibration pass of ``benchmarks/bench_fragments.py`` calls this
    after timing real operators; policies built afterwards (including
    the per-call defaults of every operator here) pick the new values
    up.  Explicitly constructed policies are unaffected.
    ``merge_fanout``, ``backend``, ``process_min``, ``join_fanout``
    and ``join_spill`` are read live (not captured by policies), so
    they take effect on in-flight handles too."""
    global DEFAULT_FRAGMENT_SIZE, PARALLEL_MIN_BUNS, MERGE_FANOUT
    global DEFAULT_BACKEND, PROCESS_MIN_BUNS
    global JOIN_FANOUT, JOIN_SPILL_BUNS
    global _TUNING_MEASURED
    if fragment_size is not None:
        if fragment_size < 1:
            raise KernelError("fragment_size must be at least 1")
        DEFAULT_FRAGMENT_SIZE = int(fragment_size)
        _TUNING_MEASURED = True
    if parallel_min is not None:
        if parallel_min < 0:
            raise KernelError("parallel_min must be non-negative")
        PARALLEL_MIN_BUNS = int(parallel_min)
        _TUNING_MEASURED = True
    if merge_fanout is not None:
        if merge_fanout < 1:
            raise KernelError("merge_fanout must be at least 1")
        MERGE_FANOUT = int(merge_fanout)
        _TUNING_MEASURED = True
    if backend is not None:
        if backend not in BACKEND_NAMES:
            raise KernelError(
                f"unknown executor backend {backend!r}; expected one of "
                f"{', '.join(BACKEND_NAMES)}"
            )
        DEFAULT_BACKEND = backend
        _TUNING_MEASURED = True
    if process_min is not None:
        if process_min < 0:
            raise KernelError("process_min must be non-negative")
        PROCESS_MIN_BUNS = int(process_min)
        _TUNING_MEASURED = True
    if join_fanout is not None:
        if join_fanout < 1:
            raise KernelError("join_fanout must be at least 1")
        JOIN_FANOUT = int(join_fanout)
        _TUNING_MEASURED = True
    if join_spill is not None:
        if join_spill < 0:
            raise KernelError("join_spill must be non-negative")
        JOIN_SPILL_BUNS = int(join_spill)
        _TUNING_MEASURED = True


def default_tuning() -> dict:
    """The current module tuning plus whether it came from measurement
    (the persistence layer only writes measured values to disk)."""
    return {
        "fragment_size": DEFAULT_FRAGMENT_SIZE,
        "parallel_min": PARALLEL_MIN_BUNS,
        "merge_fanout": MERGE_FANOUT,
        "backend": DEFAULT_BACKEND,
        "process_min": PROCESS_MIN_BUNS,
        "join_fanout": JOIN_FANOUT,
        "join_spill": JOIN_SPILL_BUNS,
        "measured": _TUNING_MEASURED,
    }


@dataclass(frozen=True)
class FragmentationPolicy:
    """How a BAT is split: fragment size, strategy, worker count and
    executor backend.

    ``target_size=None`` (the default) resolves to the current module
    default at construction time, so policies made after a
    :func:`set_default_tuning` calibration see the measured value.
    ``backend=None`` stays unresolved and reads the live module default
    at every operator call (like ``MERGE_FANOUT``), so calibrating or
    setting ``REPRO_EXECUTOR_BACKEND`` affects in-flight handles too;
    an explicit ``backend`` pins the plan to one executor."""

    target_size: Optional[int] = None
    strategy: str = "range"
    workers: Optional[int] = None
    backend: Optional[str] = None

    def __post_init__(self):
        if self.target_size is None:
            object.__setattr__(self, "target_size", DEFAULT_FRAGMENT_SIZE)
        if self.target_size < 1:
            raise KernelError("fragment target_size must be at least 1")
        if self.strategy not in ("range", "roundrobin"):
            raise KernelError(
                f"unknown fragmentation strategy {self.strategy!r}; "
                "expected 'range' or 'roundrobin'"
            )
        if self.backend is not None and self.backend not in BACKEND_NAMES:
            raise KernelError(
                f"unknown executor backend {self.backend!r}; expected one of "
                f"{', '.join(BACKEND_NAMES)}"
            )


def _default_policy() -> FragmentationPolicy:
    """A fresh policy carrying the *current* module defaults.

    Always constructed at use, never cached at import: a frozen policy
    resolves ``target_size`` at construction, so a module-level
    constant would silently pin pre-calibration values after
    :func:`set_default_tuning`."""
    return FragmentationPolicy()

# ----------------------------------------------------------------------
# Executor backends
#
# The Backend protocol has two capabilities: `map` is the generic
# closure fan-out every operator uses (always thread-based -- closures
# do not cross process boundaries), and `run_column_tasks` offloads a
# *registered* picklable per-fragment task
# (repro.monet.kernel.FRAGMENT_TASKS) over shared-memory column
# exports, returning None to decline (the caller then takes the thread
# path).  ThreadBackend declines every offload; ProcessBackend accepts
# them when shared memory is usable, owning a lazily spawned process
# pool.
# ----------------------------------------------------------------------

_EXECUTOR: Optional[ThreadPoolExecutor] = None
_EXECUTOR_LOCK = threading.Lock()


def _shared_executor() -> ThreadPoolExecutor:
    global _EXECUTOR
    if _EXECUTOR is None:
        with _EXECUTOR_LOCK:
            if _EXECUTOR is None:
                _EXECUTOR = ThreadPoolExecutor(
                    max_workers=DEFAULT_WORKERS, thread_name_prefix="fragment"
                )
    return _EXECUTOR


def map_fragments(
    fn: Callable[[Any], Any], items: Sequence[Any], workers: Optional[int] = None
) -> List[Any]:
    """Apply *fn* to every item, fanning out on the shared thread pool.

    ``workers=0``/``workers=1`` forces serial execution; an explicit
    ``workers >= 2`` uses a dedicated pool of that size (benchmarks pin
    worker counts this way); ``None`` uses the shared pool.
    """
    items = list(items)
    if len(items) <= 1 or (workers is not None and workers <= 1):
        return [fn(item) for item in items]
    if workers is None:
        return list(_shared_executor().map(fn, items))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


class ThreadBackend:
    """The default executor backend: the shared thread pool.  Offload
    requests are declined -- the thread path computes everything via
    :func:`map_fragments` closures."""

    name = "thread"

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any],
        workers: Optional[int] = None,
    ) -> List[Any]:
        return map_fragments(fn, items, workers)

    def run_column_tasks(
        self, task: str, columns: Sequence[AnyColumn], args: tuple = (),
        broadcast: Any = None,
    ) -> Optional[List[Any]]:
        return None

    def shutdown(self) -> None:
        global _EXECUTOR
        with _EXECUTOR_LOCK:
            executor, _EXECUTOR = _EXECUTOR, None
        if executor is not None:
            executor.shutdown(wait=True)


class ProcessBackend:
    """Process-pool executor backend over shared-memory column exports.

    The pool (``spawn`` context: no forked locks, no inherited thread
    state) starts lazily on the first accepted offload and is reused
    for the life of the process.  ``run_column_tasks`` exports every
    predicate column through :mod:`repro.monet.shm`, ships only
    ``(task name, handle, args)`` per fragment, and collects the
    per-fragment results; broadcast objects (shared build sides) are
    exported once and cached per worker.  Any *infrastructure* failure
    -- shared memory unusable, pool unspawnable, a worker crash or a
    task timing out (:data:`PROCESS_TASK_TIMEOUT`) -- degrades the
    backend: the call returns ``None`` and the caller recomputes on
    threads, so a broken environment costs performance, never
    correctness.  Exceptions raised by the task itself (e.g. a type
    error from the operator) propagate unchanged, exactly like the
    thread path.  The generic closure ``map`` stays thread-based: only
    registered picklable tasks cross the process boundary."""

    name = "process"

    def __init__(self):
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self._disabled = False

    def available(self) -> bool:
        """True when offloads can currently be accepted (shared memory
        importable and no prior infrastructure failure)."""
        return not self._disabled and _shm.available()

    def spawned(self) -> bool:
        """True once the worker pool has actually been started."""
        return self._pool is not None

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any],
        workers: Optional[int] = None,
    ) -> List[Any]:
        return map_fragments(fn, items, workers)

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._pool is None:
            with self._lock:
                if self._pool is None and not self._disabled:
                    try:
                        self._pool = ProcessPoolExecutor(
                            max_workers=DEFAULT_WORKERS,
                            mp_context=multiprocessing.get_context("spawn"),
                        )
                    except (OSError, ValueError):  # pragma: no cover
                        self._disabled = True
        return self._pool

    def _degrade(self) -> None:
        """Permanently fall back to threads after an infrastructure
        failure (wedged or crashed worker); never blocks on the pool."""
        self._disabled = True
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def run_column_tasks(
        self, task: str, columns: Sequence[AnyColumn], args: tuple = (),
        broadcast: Any = None,
    ) -> Optional[List[Any]]:
        if not self.available():
            return None
        pool = self._ensure_pool()
        if pool is None:
            return None
        columns = list(columns)
        if not columns:
            return []
        segments: List[Any] = []
        try:
            try:
                handles = []
                for column in columns:
                    handle, owned = _shm.export_column(column)
                    segments.extend(owned)
                    handles.append(handle)
                blob_handle = None
                if broadcast is not None:
                    blob_handle, owned = _shm.export_blob(broadcast)
                    segments.extend(owned)
            except OSError:
                # No usable shared memory (full or unwritable /dev/shm,
                # seccomp, ...): decline, callers recompute on threads.
                self._disabled = True
                return None
            futures = [
                pool.submit(_shm.run_column_task, task, handle, tuple(args), blob_handle)
                for handle in handles
            ]
            results: List[Any] = []
            try:
                for future in futures:
                    results.append(future.result(timeout=PROCESS_TASK_TIMEOUT))
            except (_FutureTimeout, BrokenProcessPool, OSError):
                for future in futures:
                    future.cancel()
                self._degrade()
                return None
            return results
        finally:
            _shm.release_segments(segments)

    def shutdown(self) -> None:
        """Join the worker pool cleanly (no leaked semaphores or
        shared-memory segments); the backend stays usable and will
        respawn lazily on the next offload."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


_THREAD_BACKEND = ThreadBackend()
_PROCESS_BACKEND = ProcessBackend()
_BACKENDS = {"thread": _THREAD_BACKEND, "process": _PROCESS_BACKEND}

#: Union of the backend implementations (the informal protocol).
Backend = Union[ThreadBackend, ProcessBackend]


def get_backend(name: Optional[str] = None) -> Backend:
    """The backend registered under *name* (default: the module-level
    :data:`DEFAULT_BACKEND`, i.e. ``REPRO_EXECUTOR_BACKEND`` /
    calibrated tuning)."""
    name = name or DEFAULT_BACKEND
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KernelError(
            f"unknown executor backend {name!r}; expected one of "
            f"{', '.join(BACKEND_NAMES)}"
        ) from None


def _resolve_backend(fb: "FragmentedBAT") -> Backend:
    """Backend for an operator over *fb*: the policy's pinned backend
    if any, else the live module default."""
    return get_backend(fb.policy.backend)


def shutdown_backends() -> None:
    """Shut down both shared executors (thread and process pools).
    Registered at exit; safe to call eagerly -- pools respawn lazily."""
    _THREAD_BACKEND.shutdown()
    _PROCESS_BACKEND.shutdown()


atexit.register(shutdown_backends)


def _forget_pools_after_fork() -> None:  # pragma: no cover - fork timing
    """A forked child must not touch pools it shares with its parent:
    drop the handles (without joining) so the child lazily builds its
    own executors."""
    global _EXECUTOR
    _EXECUTOR = None
    _PROCESS_BACKEND._pool = None


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_forget_pools_after_fork)


# ----------------------------------------------------------------------
# The fragmented BAT
# ----------------------------------------------------------------------


class FragmentedBAT:
    """An ordered list of horizontal fragments of one logical BAT.

    ``positions`` is ``None`` when fragment order is BUN order (range
    split); otherwise it holds, per fragment, the global BUN positions
    of that fragment's rows (round-robin split and results derived from
    one).
    """

    __slots__ = ("fragments", "positions", "policy", "name", "_coalesced")

    def __init__(
        self,
        fragments: Sequence[BAT],
        positions: Optional[Sequence[np.ndarray]] = None,
        *,
        policy: Optional[FragmentationPolicy] = None,
        name: Optional[str] = None,
    ):
        policy = policy or _default_policy()
        fragments = list(fragments)
        if not fragments:
            raise KernelError("a FragmentedBAT needs at least one fragment")
        if len({f.htype for f in fragments}) > 1 or len({f.ttype for f in fragments}) > 1:
            raise KernelError("all fragments must share head/tail atom types")
        if positions is not None:
            positions = [np.asarray(p, dtype=np.int64) for p in positions]
            if len(positions) != len(fragments):
                raise KernelError("one position array per fragment required")
            for frag, pos in zip(fragments, positions):
                if len(frag) != len(pos):
                    raise KernelError("fragment/position length mismatch")
        self.fragments = fragments
        self.positions = positions
        self.policy = policy
        self.name = name
        self._coalesced: Optional[BAT] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(f) for f in self.fragments)

    @property
    def count(self) -> int:
        return len(self)

    @property
    def nfragments(self) -> int:
        return len(self.fragments)

    @property
    def htype(self) -> str:
        return self.fragments[0].htype

    @property
    def ttype(self) -> str:
        return self.fragments[0].ttype

    def fragment_sizes(self) -> List[int]:
        return [len(f) for f in self.fragments]

    def global_positions(self, index: int) -> np.ndarray:
        """Global BUN positions of fragment *index*'s rows."""
        if self.positions is not None:
            return self.positions[index]
        offset = sum(len(f) for f in self.fragments[:index])
        return np.arange(offset, offset + len(self.fragments[index]), dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or "tmp"
        return (
            f"FragmentedBAT({label})[{self.htype},{self.ttype}]"
            f"#{len(self)}/{self.nfragments}frags"
        )

    # ------------------------------------------------------------------
    # Recombination
    # ------------------------------------------------------------------
    def to_bat(self) -> BAT:
        """The monolithic BAT this fragmentation represents (cached)."""
        if self._coalesced is None:
            self._coalesced = self._build_monolithic()
        return self._coalesced

    def _build_monolithic(self) -> BAT:
        frags = self.fragments
        if len(frags) == 1 and self.positions is None:
            single = frags[0]
            if self.name is not None and single.name is None:
                single.name = self.name
            return single
        head_atom = frags[0].head.atom_type
        tail_atom = frags[0].tail.atom_type
        if self.positions is None:
            order = None
        else:
            all_positions = np.concatenate(self.positions)
            order = np.argsort(all_positions, kind="stable")
        head = _concat_columns([f.head for f in frags], head_atom, order)
        tail = _concat_columns([f.tail for f in frags], tail_atom, order)
        flags = _concat_flags(frags, order is None)
        return BAT(head, tail, name=self.name, **flags)

    # Convenience delegates used by catalog/reconstruction code that
    # does not care about fragment boundaries.  They all go through the
    # cached :meth:`to_bat`, so a FragmentedBAT coalesces at most once
    # no matter how many of these a result consumer calls.
    def head_values(self) -> np.ndarray:
        return self.to_bat().head_values()

    def tail_values(self) -> np.ndarray:
        return self.to_bat().tail_values()

    def tail_list(self) -> List[Any]:
        return self.to_bat().tail_list()

    def head_list(self) -> List[Any]:
        return self.to_bat().head_list()

    def to_pairs(self) -> List[Tuple[Any, Any]]:
        return self.to_bat().to_pairs()

    # ------------------------------------------------------------------
    # Copy-on-write append: the delta tail
    # ------------------------------------------------------------------
    def append(
        self,
        pairs: Optional[Sequence[Tuple[Any, Any]]] = None,
        *,
        tails: Optional[Sequence[Any]] = None,
    ) -> "FragmentedBAT":
        """A new FragmentedBAT with the given BUNs appended.

        The committed prefix fragments are *shared by reference* with
        the receiver (copy-on-write at fragment granularity): only the
        tail delta fragment is rebuilt, so appending a batch costs
        O(tail + batch), never O(total).  While the current tail is
        below the policy target size the batch is folded into it;
        a full tail starts a fresh delta fragment instead (the merge
        daemon later splits any oversized delta back to policy size,
        see :func:`fold_tail`).  Works for both layouts: range splits
        extend BUN order, round-robin splits extend the tail fragment's
        global position list with the new trailing positions.
        """
        if (pairs is None) == (tails is None):
            raise KernelError("append takes pairs or tails=, not both/neither")
        last = self.fragments[-1]
        if tails is not None and not last.head.is_void:
            # Round-robin fragments carry materialized oid heads
            # (seqbase + global position); recover the seqbase and
            # append explicit pairs continuing the dense sequence.
            seqbase = self._dense_seqbase()
            total = len(self)
            pairs = [(seqbase + total + i, v) for i, v in enumerate(tails)]
            tails = None
        batch = len(pairs) if pairs is not None else len(tails)  # type: ignore[arg-type]
        if batch == 0:
            return self
        grow_tail = len(last) < self.policy.target_size
        if grow_tail:
            if tails is not None:
                delta = last.append(tails=tails)
            else:
                delta = last.append(list(pairs))
            new_fragments = [*self.fragments[:-1], delta]
        else:
            if tails is not None:
                delta = dense_bat(
                    self.ttype,
                    list(tails),
                    seqbase=last.head.seqbase + len(last),
                )
            else:
                delta = bat_from_pairs(self.htype, self.ttype, list(pairs))
            new_fragments = [*self.fragments, delta]
        new_positions = None
        if self.positions is not None:
            total = len(self)
            appended = np.arange(total, total + batch, dtype=np.int64)
            if grow_tail:
                new_positions = [
                    *self.positions[:-1],
                    np.concatenate([self.positions[-1], appended]),
                ]
            else:
                new_positions = [*self.positions, appended]
        return FragmentedBAT(
            new_fragments, new_positions, policy=self.policy, name=self.name
        )

    def _dense_seqbase(self) -> int:
        """Seqbase of a logically dense oid head carried as materialized
        fragment heads (round-robin layout); raises when the head is not
        recoverably dense."""
        if self.htype != "oid":
            raise KernelError(
                "append(tails=...) needs a dense oid head; pass explicit pairs"
            )
        for index, fragment in enumerate(self.fragments):
            if len(fragment) == 0:
                continue
            heads = fragment.head.materialize()
            positions = self.global_positions(index)
            seqbase = int(heads[0]) - int(positions[0])
            if not np.array_equal(heads, seqbase + positions):
                break
            return seqbase
        raise KernelError(
            "append(tails=...) needs a dense oid head; pass explicit pairs"
        )

    # ------------------------------------------------------------------
    # Copy-on-write delete / update: tombstone and patch delta kinds
    # ------------------------------------------------------------------
    def delete(self, positions) -> "FragmentedBAT":
        """A new FragmentedBAT with the BUNs at the given *global*
        positions removed -- the tombstone delta kind.

        Copy-on-write at fragment granularity, the mirror image of
        :meth:`append`: a fragment with no tombstoned row shares its
        tail array by reference with the receiver; only touched
        fragments gather their survivors.  The result is never a
        coalesce -- every fragment-parallel operator sees the smaller
        fragments and masks the tombstones structurally, with no
        tombstone bitmap to consult on the read path.

        Logically dense oid heads are *re-densified* across the whole
        BAT so Moa's positional-fetchjoin discipline survives: range
        layouts shift each untouched fragment's void seqbase (O(1) per
        fragment), round-robin layouts renumber the surviving global
        positions through one searchsorted shift.  Heads that carry
        data (non-dense) are left untouched.  Fragments emptied by the
        delete are dropped, so operators never dispatch on
        tombstone-only fragments; :func:`fold_tail` later compacts runs
        of starved survivors back to policy size.
        """
        deleted = _normalize_positions(positions, len(self))
        if len(deleted) == 0:
            return self
        if self.positions is None:
            return self._delete_range(deleted)
        return self._delete_roundrobin(deleted)

    def _delete_range(self, deleted: np.ndarray) -> "FragmentedBAT":
        offsets = [0]
        for frag in self.fragments:
            offsets.append(offsets[-1] + len(frag))
        dense_heads = all(f.head.is_void for f in self.fragments)
        out: List[BAT] = []
        for index, frag in enumerate(self.fragments):
            lo = int(np.searchsorted(deleted, offsets[index]))
            hi = int(np.searchsorted(deleted, offsets[index + 1]))
            local = deleted[lo:hi] - offsets[index]
            shift = lo  # tombstones before this fragment's window
            if len(local) == 0:
                survivor = frag
            else:
                survivor = frag.delete_positions(local)
                if len(survivor) == 0:
                    continue
            if dense_heads and shift:
                survivor = BAT(
                    VoidColumn(survivor.head.seqbase - shift, len(survivor)),
                    survivor.tail,
                    hsorted=survivor.hsorted,
                    tsorted=survivor.tsorted,
                    hkey=survivor.hkey,
                    tkey=survivor.tkey,
                )
            out.append(survivor)
        if not out:
            out = [
                self.fragments[0].take_positions(
                    np.empty(0, dtype=np.int64)
                )
            ]
        return FragmentedBAT(out, None, policy=self.policy, name=self.name)

    def _delete_roundrobin(self, deleted: np.ndarray) -> "FragmentedBAT":
        try:
            seqbase: Optional[int] = self._dense_seqbase()
        except KernelError:
            seqbase = None
        out_frags: List[BAT] = []
        out_pos: List[np.ndarray] = []
        for index, frag in enumerate(self.fragments):
            pos = self.positions[index]
            idx = np.searchsorted(deleted, pos)
            hit = np.zeros(len(pos), dtype=bool)
            in_range = idx < len(deleted)
            hit[in_range] = deleted[idx[in_range]] == pos[in_range]
            keep = np.nonzero(~hit)[0]
            if len(keep) == 0:
                continue
            new_pos = pos[keep] - np.searchsorted(deleted, pos[keep])
            survivor = frag if len(keep) == len(pos) else frag.take_positions(keep)
            if seqbase is not None:
                # Re-densify: heads are seqbase + global position by
                # contract, and the surviving positions just shifted.
                survivor = BAT(
                    Column(atom("oid"), seqbase + new_pos),
                    survivor.tail,
                    hsorted=True,  # positions arrays are sorted unique
                    hkey=True,
                    tsorted=survivor.tsorted,
                    tkey=survivor.tkey,
                )
            out_frags.append(survivor)
            out_pos.append(new_pos)
        if not out_frags:
            out_frags = [
                self.fragments[0].take_positions(np.empty(0, dtype=np.int64))
            ]
            out_pos = [np.empty(0, dtype=np.int64)]
        return FragmentedBAT(
            out_frags, out_pos, policy=self.policy, name=self.name
        )

    def update(self, positions, values) -> "FragmentedBAT":
        """A new FragmentedBAT with the tail values at the given
        *global* positions replaced -- the patch delta kind.

        Copy-on-write at fragment granularity: untouched fragments
        (heads, tails, positions) are shared by reference; each touched
        fragment patches its tail through
        :meth:`repro.monet.bat.BAT.update_positions` (O(changed) flag
        maintenance; ``tkey`` conservatively cleared, ``tsorted``
        rechecked only on the patched pairs).  Heads and global
        positions never change, so the fragmentation -- and any
        same-fragmentation alignment with sibling BATs -- survives.
        Duplicate positions resolve last-wins.
        """
        final_pos, final_vals = _aligned_updates(positions, values, len(self))
        if len(final_pos) == 0:
            return self
        if self.positions is None:
            offsets = [0]
            for frag in self.fragments:
                offsets.append(offsets[-1] + len(frag))
            out: List[BAT] = []
            for index, frag in enumerate(self.fragments):
                lo = int(np.searchsorted(final_pos, offsets[index]))
                hi = int(np.searchsorted(final_pos, offsets[index + 1]))
                if lo == hi:
                    out.append(frag)
                    continue
                local = final_pos[lo:hi] - offsets[index]
                out.append(frag.update_positions(local, final_vals[lo:hi]))
            return FragmentedBAT(out, None, policy=self.policy, name=self.name)
        out_frags: List[BAT] = []
        for index, frag in enumerate(self.fragments):
            pos = self.positions[index]
            idx = np.searchsorted(final_pos, pos)
            hit = np.zeros(len(pos), dtype=bool)
            in_range = idx < len(final_pos)
            hit[in_range] = final_pos[idx[in_range]] == pos[in_range]
            rows = np.nonzero(hit)[0]
            if len(rows) == 0:
                out_frags.append(frag)
                continue
            vals = [final_vals[i] for i in idx[rows]]
            out_frags.append(frag.update_positions(rows, vals))
        return FragmentedBAT(
            out_frags, self.positions, policy=self.policy, name=self.name
        )

    def items(self):
        return self.to_bat().items()

    def find(self, head_value) -> Any:
        return self.to_bat().find(head_value)

    def exists(self, head_value) -> bool:
        return self.to_bat().exists(head_value)


def _aligned_updates(
    positions, values, count: int
) -> Tuple[np.ndarray, List[Any]]:
    """Normalize an update batch: positions validated against *count*,
    values aligned, duplicates resolved last-wins, result sorted by
    position (the shape both layouts' searchsorted mapping needs)."""
    arr = _normalize_positions(positions, count, unique=False)
    value_list = list(values)
    if len(value_list) != len(arr):
        raise InvalidMutationBatch(
            f"update needs one value per position: "
            f"{len(value_list)} values for {len(arr)} positions"
        )
    if len(arr) == 0:
        return arr, []
    order = np.argsort(arr, kind="stable")
    sorted_pos = arr[order]
    keep = np.empty(len(sorted_pos), dtype=bool)
    keep[:-1] = sorted_pos[1:] != sorted_pos[:-1]
    keep[-1] = True
    kept = order[keep]
    return arr[kept], [value_list[i] for i in kept]


def _concat_columns(
    columns: Sequence[AnyColumn],
    atom_type,
    order: Optional[np.ndarray],
) -> AnyColumn:
    """Concatenate fragment columns, fusing consecutive void columns
    back into one void column when possible."""
    if order is None and all(c.is_void for c in columns):
        base = columns[0].seqbase
        expected = base
        contiguous = True
        for column in columns:
            if column.seqbase != expected:
                contiguous = False
                break
            expected += len(column)
        if contiguous:
            return VoidColumn(base, expected - base)
    arrays = [c.materialize() for c in columns]
    if atom_type.dtype == np.dtype(object):
        total = sum(len(a) for a in arrays)
        out = np.empty(total, dtype=object)
        at = 0
        for array in arrays:
            out[at: at + len(array)] = array
            at += len(array)
    else:
        out = np.concatenate(arrays) if arrays else atom_type.make_array([])
    if order is not None:
        out = out[order]
        # A position-merge can land back on a dense sequence; detect it
        # so voidness survives a round-robin round-trip.
        if (
            atom_type.name == "oid"
            and out.dtype == np.dtype(np.int64)
            and (len(out) == 0 or bool(np.all(np.diff(out) == 1)))
        ):
            return VoidColumn(int(out[0]) if len(out) else 0, len(out))
    return Column(atom_type, out)


def _concat_flags(frags: Sequence[BAT], ordered: bool) -> dict:
    """Conservative property flags for a fragment concatenation."""
    if not ordered:
        # Position-merged rows: nothing is guaranteed (voidness is
        # re-detected in _concat_columns and re-asserts its own flags).
        return dict(hsorted=False, tsorted=False, hkey=False, tkey=False)
    return dict(
        hsorted=all(f.hsorted for f in frags)
        and _boundaries_nondecreasing(frags, head=True),
        tsorted=all(f.tsorted for f in frags)
        and _boundaries_nondecreasing(frags, head=False),
        # Keyness across fragments is only guaranteed by dense heads,
        # which the BAT constructor re-derives from voidness.
        hkey=len(frags) == 1 and frags[0].hkey,
        tkey=len(frags) == 1 and frags[0].tkey,
    )


def _boundaries_nondecreasing(frags: Sequence[BAT], *, head: bool) -> bool:
    previous = None
    for frag in frags:
        if len(frag) == 0:
            continue
        column = frag.head if head else frag.tail
        first = column.python_value(0)
        last = column.python_value(len(frag) - 1)
        if first is None or last is None:
            return False
        if previous is not None:
            try:
                if not previous <= first:
                    return False
            except TypeError:
                return False
        previous = last
    return True


# ----------------------------------------------------------------------
# Fragmentation
# ----------------------------------------------------------------------


def fragment_bat(bat: BAT, policy: Optional[FragmentationPolicy] = None) -> FragmentedBAT:
    """Split *bat* horizontally according to *policy*."""
    policy = policy or _default_policy()
    n = len(bat)
    if n <= policy.target_size:
        return FragmentedBAT([bat], policy=policy, name=bat.name)
    if policy.strategy == "range":
        fragments = [
            _slice_view(bat, start, min(n, start + policy.target_size))
            for start in range(0, n, policy.target_size)
        ]
        return FragmentedBAT(fragments, policy=policy, name=bat.name)
    nfrag = -(-n // policy.target_size)  # ceil division
    fragments = []
    positions = []
    for k in range(nfrag):
        pos = np.arange(k, n, nfrag, dtype=np.int64)
        fragments.append(bat.take_positions(pos))
        positions.append(pos)
    return FragmentedBAT(fragments, positions, policy=policy, name=bat.name)


def _slice_view(bat: BAT, start: int, stop: int) -> BAT:
    """Contiguous fragment sharing the parent's arrays (numpy slicing
    views; no copy, unlike ``BAT.slice``'s positional gather)."""
    head = _slice_column(bat.head, start, stop)
    tail = _slice_column(bat.tail, start, stop)
    return BAT(
        head,
        tail,
        hsorted=bat.hsorted,
        tsorted=bat.tsorted,
        hkey=bat.hkey,
        tkey=bat.tkey,
    )


def _slice_column(column: AnyColumn, start: int, stop: int) -> AnyColumn:
    if column.is_void:
        return VoidColumn(column.seqbase + start, stop - start)
    return Column(column.atom_type, column.values[start:stop])


# ----------------------------------------------------------------------
# Fragment-parallel operators: selections
# ----------------------------------------------------------------------


def _subset_op(
    fb: FragmentedBAT,
    mask_fn: Callable[[BAT], np.ndarray],
    workers: Optional[int],
) -> FragmentedBAT:
    """Generic row-subset operator: evaluate a predicate mask per
    fragment in parallel and keep the qualifying BUNs."""

    def one(indexed: Tuple[int, BAT]) -> Tuple[BAT, Optional[np.ndarray]]:
        index, frag = indexed
        keep = np.nonzero(mask_fn(frag))[0]
        out = frag.take_positions(keep)
        if fb.positions is None:
            return out, None
        return out, fb.positions[index][keep]

    results = map_fragments(one, list(enumerate(fb.fragments)), workers)
    fragments = [r[0] for r in results]
    positions = None if fb.positions is None else [r[1] for r in results]
    return FragmentedBAT(fragments, positions, policy=fb.policy)


def _offload_subset(
    fb: FragmentedBAT,
    task: str,
    args: tuple,
    columns: Sequence[AnyColumn],
    *,
    object_work: bool,
    broadcast: Any = None,
) -> Optional[FragmentedBAT]:
    """Row-subset via the resolved backend's process offload.

    Only object-dtype predicate work at or above
    :data:`PROCESS_MIN_BUNS` is eligible (the per-dtype rule: numeric
    predicates release the GIL and are faster on threads), and the
    backend itself may still decline (thread backend, shared memory
    unusable).  ``None`` means "not offloaded" -- the caller runs the
    thread path.  On success the workers return each fragment's
    qualifying local positions and the parent gathers the surviving
    rows, exactly mirroring :func:`_subset_op`'s combine."""
    if not object_work or len(fb) < PROCESS_MIN_BUNS:
        return None
    keeps = _resolve_backend(fb).run_column_tasks(
        task, columns, args, broadcast=broadcast
    )
    if keeps is None:
        return None
    fragments: List[BAT] = []
    positions: List[np.ndarray] = []
    for index, (frag, keep) in enumerate(zip(fb.fragments, keeps)):
        fragments.append(frag.take_positions(keep))
        if fb.positions is not None:
            positions.append(fb.positions[index][keep])
    return FragmentedBAT(
        fragments,
        positions if fb.positions is not None else None,
        policy=fb.policy,
    )


def _resolve_workers(fb: FragmentedBAT, workers: Optional[int]) -> Optional[int]:
    if workers is not None:
        return workers
    if fb.policy.workers is not None:
        return fb.policy.workers
    if len(fb) < PARALLEL_MIN_BUNS:
        return 1
    return None


def select(
    fb: FragmentedBAT,
    low: Any,
    high: Any = _kernel._UNSET,
    *,
    include_low: bool = True,
    include_high: bool = True,
    workers: Optional[int] = None,
) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.select`.  Object
    (str) predicates offload to the process backend when selected --
    the Python-level scan holds the GIL, so threads cannot help it."""
    workers = _resolve_workers(fb, workers)
    object_tail = _kernel._is_object_column(fb.fragments[0].tail)
    tails = [frag.tail for frag in fb.fragments]
    if high is _kernel._UNSET:
        offloaded = _offload_subset(
            fb, "equal_positions", (low,), tails, object_work=object_tail
        )
        if offloaded is not None:
            return offloaded
        return _subset_op(fb, lambda frag: _kernel.equal_mask(frag, low), workers)
    offloaded = _offload_subset(
        fb,
        "range_positions",
        (low, high, include_low, include_high),
        tails,
        object_work=object_tail,
    )
    if offloaded is not None:
        return offloaded
    return _subset_op(
        fb,
        lambda frag: _kernel.range_mask(frag, low, high, include_low, include_high),
        workers,
    )


def uselect(
    fb: FragmentedBAT,
    low: Any,
    high: Any = _kernel._UNSET,
    *,
    workers: Optional[int] = None,
    **flags,
) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.uselect`: qualifying
    heads with the tail replaced by a dense oid sequence in BUN order."""
    selected = select(
        fb,
        low,
        high,
        include_low=flags.get("include_low", True),
        include_high=flags.get("include_high", True),
        workers=workers,
    )
    return _renumber_tails(selected, 0)


def likeselect(
    fb: FragmentedBAT, pattern: str, *, workers: Optional[int] = None
) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.likeselect`.  The
    canonical process-backend beneficiary: the substring scan is pure
    GIL-bound Python, so worker processes give the speedup fragments
    promise and threads cannot deliver."""
    workers = _resolve_workers(fb, workers)
    offloaded = _offload_subset(
        fb,
        "like_positions",
        (pattern,),
        [frag.tail for frag in fb.fragments],
        object_work=fb.ttype == "str",
    )
    if offloaded is not None:
        return offloaded
    return _subset_op(fb, lambda frag: _kernel.like_mask(frag, pattern), workers)


# ----------------------------------------------------------------------
# Fragment-parallel operators: join family
# ----------------------------------------------------------------------


def _probe_dtype(fb: FragmentedBAT) -> bool:
    """True when *fb* carries object (str) tails.

    The one sanctioned ``fb.fragments[0]`` probe: the constructor
    enforces the >=1-fragment invariant (pinned by regression tests),
    and a void tail reads as non-object, so degenerate all-empty
    fragmentations probe safely."""
    return _kernel._is_object_column(fb.fragments[0].tail)


def _dense_window_starts(right: FragmentedBAT) -> Optional[List[int]]:
    """Per-fragment seqbase starts (plus the global end) of a
    range-partitioned fragmented right operand whose void heads form
    one contiguous ascending sequence -- exactly the case where its
    coalesced head would fuse back into a single void column -- or
    ``None`` when seqbase routing does not apply."""
    if right.positions is not None:
        return None
    starts: List[int] = []
    expected: Optional[int] = None
    for frag in right.fragments:
        if not frag.hdense:
            return None
        seqbase = frag.head.seqbase
        if expected is not None and seqbase != expected:
            return None
        starts.append(seqbase)
        expected = seqbase + len(frag)
    starts.append(expected)
    return starts


def fetchjoin(
    fb: FragmentedBAT,
    right: Union[BAT, FragmentedBAT],
    *,
    workers: Optional[int] = None,
) -> FragmentedBAT:
    """Fragment-parallel positional join against a shared void-headed
    right operand.  A range-partitioned fragmented dense right stays
    fragmented: seqbase arithmetic routes every probe to its owning
    right fragment, so neither side coalesces."""
    if isinstance(right, FragmentedBAT):
        starts = _dense_window_starts(right)
        if starts is not None:
            return _fetchjoin_fragmented(fb, right, starts, workers)
        # Round-robin or non-contiguous rights coalesce (and may then
        # legitimately fail the voidness check below), as before.
        right = right.to_bat()
    if not right.hdense:
        raise KernelError("fetchjoin requires a void-headed right operand")
    workers = _resolve_workers(fb, workers)

    def one(indexed: Tuple[int, BAT]) -> Tuple[BAT, Optional[np.ndarray]]:
        index, frag = indexed
        tails = frag.tail_values()
        targets = tails - right.head.seqbase
        valid = (targets >= 0) & (targets < len(right))
        keep = np.nonzero(valid)[0]
        head = frag.head.take(keep)
        tail = right.tail.take(targets[keep])
        out = BAT(head, tail, hkey=frag.hkey)
        if fb.positions is None:
            return out, None
        return out, fb.positions[index][keep]

    results = map_fragments(one, list(enumerate(fb.fragments)), workers)
    positions = None if fb.positions is None else [r[1] for r in results]
    return FragmentedBAT([r[0] for r in results], positions, policy=fb.policy)


def _fetchjoin_fragmented(
    fb: FragmentedBAT,
    right: FragmentedBAT,
    starts: List[int],
    workers: Optional[int],
) -> FragmentedBAT:
    """Positional join against a fragmented dense right operand: each
    probe resolves to (owning right fragment, local offset) by binary
    search over the seqbase windows, gathers fan out per owner, and a
    stable scatter restores probe order."""
    workers = _resolve_workers(fb, workers)
    offsets = np.asarray(starts, dtype=np.int64)
    tails_object = _kernel._is_object_column(right.fragments[0].tail)
    tail_values = [frag.tail_values() for frag in right.fragments]
    tail_atom = right.ttype

    def one(indexed: Tuple[int, BAT]) -> Tuple[BAT, Optional[np.ndarray]]:
        index, frag = indexed
        probes = frag.tail_values()
        valid = (probes >= offsets[0]) & (probes < offsets[-1])
        keep = np.nonzero(valid)[0]
        targets = probes[keep]
        owners = np.searchsorted(offsets, targets, side="right") - 1
        row_chunks: List[np.ndarray] = []
        value_chunks: List[np.ndarray] = []
        for owner in range(right.nfragments):
            rows = np.nonzero(owners == owner)[0]
            if len(rows) == 0:
                continue
            row_chunks.append(rows)
            value_chunks.append(tail_values[owner][targets[rows] - offsets[owner]])
        if row_chunks:
            rows = np.concatenate(row_chunks)
            values = _concat_raw(value_chunks, tails_object)
            order = np.argsort(rows, kind="stable")
            values = values[order]
        else:
            values = (
                np.empty(0, dtype=object)
                if tails_object
                else tail_values[0][:0]
            )
        out = BAT(frag.head.take(keep), Column(tail_atom, values), hkey=frag.hkey)
        if fb.positions is None:
            return out, None
        return out, fb.positions[index][keep]

    results = map_fragments(one, list(enumerate(fb.fragments)), workers)
    positions = None if fb.positions is None else [r[1] for r in results]
    return FragmentedBAT([r[0] for r in results], positions, policy=fb.policy)


# ----------------------------------------------------------------------
# Radix-partitioned (grace) hash join
#
# The value join partitions BOTH operands by a radix of the join key
# (kernel.join_partition_ids; NIL BUNs drop first, comparison rule):
# per-fragment key extraction fans out like the membership builds, so a
# fragmented right operand never coalesces; per-partition match indexes
# build in parallel (the object-dtype radix split offloads to the
# process backend); every probe fragment probes partition-locally; and
# a build side past JOIN_SPILL_BUNS spills its partitions through the
# BBP scratch directory as npz units and is processed one partition at
# a time, capping the resident build state.  A key lives in exactly one
# partition, so a stable per-fragment sort on probe position
# reassembles the exact monolithic kernel.join order.
# ----------------------------------------------------------------------


def _concat_raw(chunks: List[np.ndarray], object_dtype: bool) -> np.ndarray:
    """Concatenate raw value arrays (object-dtype aware)."""
    if len(chunks) == 1:
        return chunks[0]
    if object_dtype:
        total = sum(len(chunk) for chunk in chunks)
        out = np.empty(total, dtype=object)
        at = 0
        for chunk in chunks:
            out[at: at + len(chunk)] = chunk
            at += len(chunk)
        return out
    return np.concatenate(chunks)


def _join_fanout(build_n: int) -> int:
    """Radix partition count for a *build_n*-BUN build side: enough
    partitions to parallelize and stay cache-resident, floored so small
    builds never shatter, capped at the live :data:`JOIN_FANOUT`."""
    by_floor = -(-build_n // max(1, JOIN_PARTITION_MIN_BUNS))
    return max(1, min(JOIN_FANOUT, by_floor))


def _build_side(
    right: Union[BAT, FragmentedBAT],
) -> Tuple[List[BAT], List[np.ndarray]]:
    """The build side as (fragments, per-fragment global BUN
    positions), monolithic rights being one fragment of themselves."""
    if isinstance(right, FragmentedBAT):
        return list(right.fragments), [
            right.global_positions(index) for index in range(right.nfragments)
        ]
    return [right], [np.arange(len(right), dtype=np.int64)]


def _join_partition_lists(
    source: Union[BAT, FragmentedBAT],
    columns: List[AnyColumn],
    keyspace: str,
    fanout: int,
    workers: Optional[int],
) -> List[List[np.ndarray]]:
    """Per-fragment radix splits (NIL-free local positions grouped by
    partition), offloaded to the process backend for the GIL-bound
    object-dtype hashing loops."""
    if keyspace == "object" and sum(len(c) for c in columns) >= PROCESS_MIN_BUNS:
        backend = (
            _resolve_backend(source)
            if isinstance(source, FragmentedBAT)
            else get_backend()
        )
        parts = backend.run_column_tasks(
            "join_partition_positions", columns, (keyspace, fanout)
        )
        if parts is not None:
            return parts
    return map_fragments(
        lambda column: _kernel.task_join_partition_positions(column, keyspace, fanout),
        columns,
        workers,
    )


def _assemble_join_partition(
    key_chunks: List[np.ndarray],
    gpos_chunks: List[np.ndarray],
    tail_chunks: List[np.ndarray],
    keys_object: bool,
    tails_object: bool,
):
    """One resident build partition: rows restored to global BUN order
    (round-robin fragments arrive permuted; the probe output must match
    the monolithic kernel, which builds in BUN order), then indexed via
    the shared match-index machinery.  ``None`` for an empty partition."""
    if not key_chunks:
        return None
    keys = _concat_raw(key_chunks, keys_object)
    gpos = np.concatenate(gpos_chunks)
    tails = _concat_raw(tail_chunks, tails_object)
    if len(gpos) > 1 and not bool(np.all(np.diff(gpos) >= 0)):
        order = np.argsort(gpos, kind="stable")
        keys = keys[order]
        tails = tails[order]
    return _kernel.build_match_index(keys, keys_object), tails


def _grace_matches(
    fb: FragmentedBAT,
    right: Union[BAT, FragmentedBAT],
    workers: Optional[int],
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """The grace-join core shared by :func:`join` and
    :func:`outerjoin`: per probe fragment, the matching
    (probe_positions, build tail values) ordered exactly like the
    monolithic ``kernel.join`` (ascending probe position; per probe
    BUN, matches in ascending build BUN order)."""
    keyspace = _kernel.set_keyspace(fb.fragments[0].tail, _head_columns(right)[0])
    object_dtype = keyspace == "object"
    build_frags, build_gpos = _build_side(right)
    tails_object = _kernel._is_object_column(build_frags[0].tail)
    build_n = sum(len(frag) for frag in build_frags)
    fanout = _join_fanout(build_n)
    spill = build_n > JOIN_SPILL_BUNS
    if spill:
        # Partitions sized to the spill threshold, so the resident
        # build state stays near the cap (bounded fanout keeps the
        # unit count sane when the threshold is tiny).
        per_partition = max(1, JOIN_SPILL_BUNS)
        fanout = max(fanout, min(256, -(-build_n // per_partition)))
    empty_positions = np.empty(0, dtype=np.int64)
    empty_tails = (
        np.empty(0, dtype=object)
        if tails_object
        else build_frags[0].tail_values()[:0]
    )

    def probe_parts(frag: BAT) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        keys, valid = _kernel.join_keys(frag.tail, keyspace)
        positions = np.nonzero(valid)[0]
        ids = _kernel.join_partition_ids(keys, fanout, object_dtype)[positions]
        return keys, positions, ids

    if spill:
        matches = _grace_matches_spilled(
            fb,
            build_frags,
            build_gpos,
            keyspace,
            fanout,
            probe_parts,
            tails_object,
            workers,
        )
    else:
        build_keys = [
            _kernel.join_keys(frag.head, keyspace)[0] for frag in build_frags
        ]
        build_tails = [frag.tail_values() for frag in build_frags]
        build_parts = _join_partition_lists(
            right, [frag.head for frag in build_frags], keyspace, fanout, workers
        )

        def one_partition(partition: int):
            key_chunks, gpos_chunks, tail_chunks = [], [], []
            for keys, gpos, tails, parts in zip(
                build_keys, build_gpos, build_tails, build_parts
            ):
                sel = parts[partition]
                if len(sel):
                    key_chunks.append(keys[sel])
                    gpos_chunks.append(gpos[sel])
                    tail_chunks.append(tails[sel])
            return _assemble_join_partition(
                key_chunks, gpos_chunks, tail_chunks, object_dtype, tails_object
            )

        partitions = map_fragments(one_partition, list(range(fanout)), workers)

        def probe_one(frag: BAT) -> Tuple[np.ndarray, np.ndarray]:
            if len(frag) == 0 or build_n == 0:
                return empty_positions, empty_tails
            keys, positions, ids = probe_parts(frag)
            position_chunks, value_chunks = [], []
            for partition in range(fanout):
                part = partitions[partition]
                if part is None:
                    continue
                sel = positions[ids == partition]
                if len(sel) == 0:
                    continue
                index, part_tails = part
                pp, bp = _kernel.probe_match_index(keys[sel], index, object_dtype)
                if len(pp):
                    position_chunks.append(sel[pp])
                    value_chunks.append(part_tails[bp])
            if not position_chunks:
                return empty_positions, empty_tails
            probe_positions = np.concatenate(position_chunks)
            values = _concat_raw(value_chunks, tails_object)
            # One key -> one partition, so the stable sort on probe
            # position cannot reorder same-probe matches: they all came
            # from a single partition, already in build order.
            order = np.argsort(probe_positions, kind="stable")
            return probe_positions[order], values[order]

        matches = map_fragments(probe_one, list(fb.fragments), workers)
    return matches


def _grace_matches_spilled(
    fb: FragmentedBAT,
    build_frags: List[BAT],
    build_gpos: List[np.ndarray],
    keyspace: str,
    fanout: int,
    probe_parts,
    tails_object: bool,
    workers: Optional[int],
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Out-of-core grace join: build partitions stream to npz spill
    units fragment by fragment, then load back one partition at a time
    -- the resident build state is one partition, not the build side."""
    from repro.monet import bbp as _bbp

    object_dtype = keyspace == "object"
    empty_positions = np.empty(0, dtype=np.int64)
    empty_tails = (
        np.empty(0, dtype=object)
        if tails_object
        else build_frags[0].tail_values()[:0]
    )
    units: List[List] = [[] for _ in range(fanout)]
    try:
        for frag, gpos in zip(build_frags, build_gpos):
            keys, valid = _kernel.join_keys(frag.head, keyspace)
            positions = np.nonzero(valid)[0]
            ids = _kernel.join_partition_ids(keys, fanout, object_dtype)[positions]
            tails = frag.tail_values()
            for partition in range(fanout):
                sel = positions[ids == partition]
                if len(sel) == 0:
                    continue
                path = _bbp.write_spill_unit(
                    _bbp.new_spill_tag(f"join-p{partition:03d}"),
                    keys=keys[sel],
                    gpos=gpos[sel],
                    tails=tails[sel],
                )
                units[partition].append(path)
            del keys, valid, positions, ids, tails
        probe_data = map_fragments(probe_parts, list(fb.fragments), workers)
        accum: List[Tuple[List[np.ndarray], List[np.ndarray]]] = [
            ([], []) for _ in fb.fragments
        ]
        for partition in range(fanout):
            if not units[partition]:
                continue
            key_chunks, gpos_chunks, tail_chunks = [], [], []
            for path in units[partition]:
                data = _bbp.read_spill_unit(path)
                key_chunks.append(data["keys"])
                gpos_chunks.append(data["gpos"])
                tail_chunks.append(data["tails"])
            part = _assemble_join_partition(
                key_chunks, gpos_chunks, tail_chunks, object_dtype, tails_object
            )
            del key_chunks, gpos_chunks, tail_chunks
            index, part_tails = part

            def probe_into(fragment_index: int):
                keys, positions, ids = probe_data[fragment_index]
                sel = positions[ids == partition]
                if len(sel) == 0:
                    return None
                pp, bp = _kernel.probe_match_index(keys[sel], index, object_dtype)
                if len(pp) == 0:
                    return None
                return sel[pp], part_tails[bp]

            probed = map_fragments(
                probe_into, list(range(len(fb.fragments))), workers
            )
            for fragment_index, result in enumerate(probed):
                if result is not None:
                    accum[fragment_index][0].append(result[0])
                    accum[fragment_index][1].append(result[1])
            del part, index, part_tails
    finally:
        for partition_units in units:
            for path in partition_units:
                _bbp.drop_spill_unit(path)
    matches = []
    for position_chunks, value_chunks in accum:
        if not position_chunks:
            matches.append((empty_positions, empty_tails))
            continue
        probe_positions = np.concatenate(position_chunks)
        values = _concat_raw(value_chunks, tails_object)
        order = np.argsort(probe_positions, kind="stable")
        matches.append((probe_positions[order], values[order]))
    return matches


def _right_hkey(right: Union[BAT, FragmentedBAT]) -> bool:
    """Conservative head-keyness of a join build side (a fragmented
    right only guarantees it with a single fragment)."""
    if isinstance(right, BAT):
        return right.hkey
    return right.nfragments == 1 and right.fragments[0].hkey


def join(
    fb: FragmentedBAT,
    right: Union[BAT, FragmentedBAT],
    *,
    workers: Optional[int] = None,
) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.join`, executed as a
    radix-partitioned (grace) hash join: both sides partition by a
    radix of the join key, per-partition match indexes build in
    parallel, probes stay partition-local, and oversized build sides
    spill through the BBP scratch directory.  Neither operand ever
    coalesces -- a fragmented right contributes per-fragment keys
    exactly like the membership builds."""
    _kernel.check_join_types(fb.ttype, right.htype)
    if isinstance(right, BAT) and right.hdense:
        return fetchjoin(fb, right, workers=workers)
    if isinstance(right, FragmentedBAT) and _dense_window_starts(right) is not None:
        return fetchjoin(fb, right, workers=workers)
    workers = _resolve_workers(fb, workers)
    matches = _grace_matches(fb, right, workers)
    right_hkey = _right_hkey(right)
    tail_atom = right.ttype

    results = []
    for index, frag in enumerate(fb.fragments):
        probe_positions, tail_values = matches[index]
        out = BAT(
            frag.head.take(probe_positions),
            Column(tail_atom, tail_values),
            hkey=frag.hkey and right_hkey,
        )
        positions = (
            None if fb.positions is None else fb.positions[index][probe_positions]
        )
        results.append((out, positions))
    positions = None if fb.positions is None else [r[1] for r in results]
    return FragmentedBAT([r[0] for r in results], positions, policy=fb.policy)


# ----------------------------------------------------------------------
# Fragment-parallel set operators and head-membership predicates
#
# semijoin / kdiff (comparison NIL rule: NIL is never a member) and
# kunion / kintersect (identity NIL rule: all NILs are one set element)
# share one shape: the membership side's head keys are built ONCE --
# per-fragment key extraction fans out, and a fragmented operand never
# coalesces -- then every probe fragment tests against the shared build
# in parallel (mirroring build_match_index/probe_match_index for value
# joins).
# ----------------------------------------------------------------------


def _head_columns(value: Union[BAT, FragmentedBAT]) -> List[AnyColumn]:
    if isinstance(value, FragmentedBAT):
        return [fragment.head for fragment in value.fragments]
    return [value.head]


def _member_build(
    source: Union[BAT, FragmentedBAT], keyspace: str, workers: Optional[int]
):
    """Identity-key membership set over *source*'s heads
    (:func:`kernel.build_member_set`), built once and shared by every
    probe fragment; the per-fragment key extraction fans out -- on
    worker processes for object keyspaces under the process backend
    (the per-value ``nil_dedup_key`` loop is GIL-bound), on threads
    otherwise."""
    columns = _head_columns(source)
    if keyspace == "object" and sum(len(c) for c in columns) >= PROCESS_MIN_BUNS:
        backend = (
            _resolve_backend(source)
            if isinstance(source, FragmentedBAT)
            else get_backend()
        )
        key_sets = backend.run_column_tasks("member_key_set", columns, (keyspace,))
        if key_sets is not None:
            members: set = set()
            for keys in key_sets:
                members.update(keys)
            return members
    per_fragment = map_fragments(
        lambda column: _kernel.member_keys(column, keyspace),
        columns,
        workers,
    )
    if keyspace == "object":
        members = set()
        for keys in per_fragment:
            members.update(keys)
        return members
    return _kernel.build_member_set(np.concatenate(per_fragment), keyspace)


def _member_subset(
    fb: FragmentedBAT,
    members,
    keyspace: str,
    *,
    nil_member: bool,
    invert: bool,
    workers: Optional[int],
) -> FragmentedBAT:
    """Row subset of *fb* by head membership in the shared build.  For
    object keyspaces under the process backend, the build broadcasts
    once as a cached blob and every probe fragment tests against it in
    a worker process (the per-key hash probes are GIL-bound Python)."""
    offloaded = _offload_subset(
        fb,
        "member_positions",
        (keyspace, nil_member, invert),
        [frag.head for frag in fb.fragments],
        object_work=keyspace == "object",
        broadcast=members,
    )
    if offloaded is not None:
        return offloaded

    def mask_fn(frag: BAT) -> np.ndarray:
        mask = _kernel.probe_member_set(
            _kernel.member_keys(frag.head, keyspace),
            members,
            keyspace,
            nil_member=nil_member,
        )
        return ~mask if invert else mask

    return _subset_op(fb, mask_fn, workers)


def semijoin(
    fb: FragmentedBAT,
    right: Union[BAT, FragmentedBAT],
    *,
    workers: Optional[int] = None,
) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.semijoin`
    (comparison NIL rule; a fragmented right operand contributes its
    head keys without coalescing).

    Numeric keyspaces route through the grace-join radix split: the
    right side's head keys partition per fragment, each partition
    dedupes in parallel, and probe fragments test partition-locally.
    Object keyspaces keep the broadcast-membership path, whose probe
    loops offload to the process backend."""
    workers = _resolve_workers(fb, workers)
    if isinstance(right, BAT) and right.hdense:
        return _subset_op(
            fb, lambda frag: _kernel.semijoin_mask(frag, right), workers
        )
    keyspace = _kernel.set_keyspace(fb.fragments[0].head, _head_columns(right)[0])
    if keyspace != "object":
        return _partitioned_semijoin(fb, right, keyspace, workers)
    members = _member_build(right, keyspace, workers)
    return _member_subset(
        fb, members, keyspace, nil_member=False, invert=False, workers=workers
    )


def _partitioned_semijoin(
    fb: FragmentedBAT,
    right: Union[BAT, FragmentedBAT],
    keyspace: str,
    workers: Optional[int],
) -> FragmentedBAT:
    """Numeric semijoin through the grace-join partitioned build.  NIL
    build and probe keys drop with the :func:`kernel.join_keys` mask
    (comparison rule: NIL is never a member), so the per-partition
    member arrays carry comparison keys only."""
    columns = _head_columns(right)
    build_n = sum(len(column) for column in columns)
    fanout = _join_fanout(build_n)

    def keyed_parts(column: AnyColumn) -> Tuple[np.ndarray, List[np.ndarray]]:
        keys, valid = _kernel.join_keys(column, keyspace)
        positions = np.nonzero(valid)[0]
        ids = _kernel.join_partition_ids(keys, fanout, False)[positions]
        return keys, [positions[ids == partition] for partition in range(fanout)]

    per_fragment = map_fragments(keyed_parts, columns, workers)
    empty_keys = per_fragment[0][0][:0] if per_fragment else np.empty(0, np.int64)

    def one_partition(partition: int) -> np.ndarray:
        chunks = [
            keys[parts[partition]]
            for keys, parts in per_fragment
            if len(parts[partition])
        ]
        if not chunks:
            return empty_keys
        return np.unique(np.concatenate(chunks))

    members = map_fragments(one_partition, list(range(fanout)), workers)

    def mask_fn(frag: BAT) -> np.ndarray:
        mask = np.zeros(len(frag), dtype=bool)
        if len(frag) == 0 or build_n == 0:
            return mask
        keys, valid = _kernel.join_keys(frag.head, keyspace)
        positions = np.nonzero(valid)[0]
        ids = _kernel.join_partition_ids(keys, fanout, False)[positions]
        for partition in range(fanout):
            sel = positions[ids == partition]
            if len(sel) and len(members[partition]):
                hits = np.isin(keys[sel], members[partition])
                mask[sel[hits]] = True
        return mask

    return _subset_op(fb, mask_fn, workers)


def antijoin(
    fb: FragmentedBAT,
    right: Union[BAT, FragmentedBAT],
    *,
    workers: Optional[int] = None,
) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.kdiff`
    (anti-semijoin, comparison NIL rule: NIL heads always survive, so
    the shared build is probed with NIL probes masked out)."""
    workers = _resolve_workers(fb, workers)
    if isinstance(right, BAT) and right.hdense:
        return _subset_op(
            fb, lambda frag: ~_kernel.semijoin_mask(frag, right), workers
        )
    keyspace = _kernel.set_keyspace(fb.fragments[0].head, _head_columns(right)[0])
    members = _member_build(right, keyspace, workers)
    return _member_subset(
        fb, members, keyspace, nil_member=False, invert=True, workers=workers
    )


kdiff = antijoin


def kintersect(
    fb: FragmentedBAT,
    right: Union[BAT, FragmentedBAT],
    *,
    workers: Optional[int] = None,
) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.kintersect`: keep
    the left BUNs whose head is in the shared right-head build, under
    the **identity** NIL rule (a NIL head is a member of a head set
    containing any NIL)."""
    workers = _resolve_workers(fb, workers)
    keyspace = _kernel.set_keyspace(fb.fragments[0].head, _head_columns(right)[0])
    members = _member_build(right, keyspace, workers)
    return _member_subset(
        fb, members, keyspace, nil_member=True, invert=False, workers=workers
    )


def kunion(
    fb: FragmentedBAT,
    right: Union[BAT, FragmentedBAT],
    *,
    workers: Optional[int] = None,
) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.kunion`: the left
    fragments pass through untouched, the right side filters
    fragment-parallel against a shared membership build of the *left*
    heads (identity NIL rule, so the NIL head never duplicates), and
    the surviving right BUNs append as additional fragments in right
    BUN order -- the result never coalesces mid-plan.  Mismatched atom
    types raise, like the monolithic kernel (a union under the left
    types would silently reinterpret right-side values)."""
    if isinstance(right, BAT):
        right = fragment_bat(right, fb.policy)
    _kernel.check_kunion_types(fb.fragments[0], right.fragments[0])
    workers = _resolve_workers(fb, workers)
    keyspace = _kernel.set_keyspace(fb.fragments[0].head, right.fragments[0].head)
    members = _member_build(fb, keyspace, workers)

    def one(indexed: Tuple[int, BAT]) -> Tuple[BAT, np.ndarray]:
        index, frag = indexed
        mask = _kernel.probe_member_set(
            _kernel.member_keys(frag.head, keyspace),
            members,
            keyspace,
            nil_member=True,
        )
        keep = np.nonzero(~mask)[0]
        return frag.take_positions(keep), right.global_positions(index)[keep]

    results = map_fragments(one, list(enumerate(right.fragments)), workers)
    if sum(len(r[0]) for r in results) == 0:
        return fb
    if fb.positions is None and right.positions is None:
        fragments = fb.fragments + [r[0] for r in results if len(r[0])]
        return FragmentedBAT(fragments, policy=fb.policy)
    # A round-robin side is involved: result positions are the left rows
    # at their global BUN *ranks* (0..len(left)-1), survivors at
    # len(left) + rank among survivors (ordered by right BUN position).
    # Ranks, not raw positions, on both sides: a *derived* subset has
    # sparse position values that would collide with the appended block.
    base = len(fb)
    survivor_rpos = np.concatenate([r[1] for r in results])
    ranks = np.empty(len(survivor_rpos), dtype=np.int64)
    ranks[np.argsort(survivor_rpos, kind="stable")] = np.arange(
        len(survivor_rpos), dtype=np.int64
    )
    fragments = list(fb.fragments)
    if fb.positions is None:
        positions = [fb.global_positions(i) for i in range(fb.nfragments)]
    else:
        left_ranks = _global_ranks(fb)
        positions = []
        left_at = 0
        for fragment in fb.fragments:
            positions.append(left_ranks[left_at: left_at + len(fragment)])
            left_at += len(fragment)
    at = 0
    for frag, rpos in results:
        if len(frag):
            fragments.append(frag)
            positions.append(base + ranks[at: at + len(rpos)])
        at += len(rpos)
    return FragmentedBAT(fragments, positions, policy=fb.policy)


# ----------------------------------------------------------------------
# Fragment-parallel operators: reconstruction
# ----------------------------------------------------------------------


def mark(fb: FragmentedBAT, base: int = 0) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.mark`: the tail
    becomes ``base + global BUN position``, continuous across
    fragments."""
    return _renumber_tails(fb, base)


def _renumber_tails(fb: FragmentedBAT, base: int) -> FragmentedBAT:
    fragments: List[BAT] = []
    if fb.positions is None:
        offset = base
        for frag in fb.fragments:
            fragments.append(
                BAT(
                    frag.head,
                    VoidColumn(offset, len(frag)),
                    hsorted=frag.hsorted,
                    hkey=frag.hkey,
                )
            )
            offset += len(frag)
        return FragmentedBAT(fragments, policy=fb.policy)
    # Round-robin rows: ranks of the global positions are the BUN-order
    # indexes.  When the FragmentedBAT covers a whole input the
    # positions are already 0..n-1; for derived subsets we rank.
    ranks = _global_ranks(fb)
    at = 0
    for frag in fb.fragments:
        tail = Column("oid", base + ranks[at: at + len(frag)])
        fragments.append(BAT(frag.head, tail, hsorted=frag.hsorted, hkey=frag.hkey))
        at += len(frag)
    return FragmentedBAT(fragments, fb.positions, policy=fb.policy)


def number(fb: FragmentedBAT, base: int = 0) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.number`: the head
    becomes ``base + global BUN position`` (``mark`` flipped)."""
    base = int(base)
    fragments: List[BAT] = []
    if fb.positions is None:
        offset = base
        for frag in fb.fragments:
            fragments.append(
                BAT(
                    VoidColumn(offset, len(frag)),
                    frag.tail,
                    tsorted=frag.tsorted,
                    tkey=frag.tkey,
                )
            )
            offset += len(frag)
        return FragmentedBAT(fragments, policy=fb.policy)
    ranks = _global_ranks(fb)
    at = 0
    for frag in fb.fragments:
        head = Column("oid", base + ranks[at: at + len(frag)])
        fragments.append(BAT(head, frag.tail, tsorted=frag.tsorted, tkey=frag.tkey))
        at += len(frag)
    return FragmentedBAT(fragments, fb.positions, policy=fb.policy)


def _global_ranks(fb: FragmentedBAT) -> np.ndarray:
    """BUN-order ranks of all rows, concatenated in fragment order."""
    all_positions = np.concatenate(fb.positions)
    ranks = np.empty(len(all_positions), dtype=np.int64)
    ranks[np.argsort(all_positions, kind="stable")] = np.arange(
        len(all_positions), dtype=np.int64
    )
    return ranks


def reverse(fb: FragmentedBAT) -> FragmentedBAT:
    """Per-fragment :meth:`repro.monet.bat.BAT.reverse` (O(1) views);
    fragment boundaries are head/tail-agnostic, so no data moves."""
    return FragmentedBAT(
        [frag.reverse() for frag in fb.fragments], fb.positions, policy=fb.policy
    )


def mirror(fb: FragmentedBAT) -> FragmentedBAT:
    """Per-fragment :meth:`repro.monet.bat.BAT.mirror` (O(1) views)."""
    return FragmentedBAT(
        [frag.mirror() for frag in fb.fragments], fb.positions, policy=fb.policy
    )


def slice_(fb: FragmentedBAT, start: int, stop: int) -> FragmentedBAT:
    """Fragment-aware :func:`repro.monet.kernel.slice_bat`: the global
    BUN window [start, stop).  Range fragments intersect the window per
    fragment (zero-copy views); round-robin fragments keep the rows
    whose global BUN rank falls inside the window."""
    n = len(fb)
    start = max(0, int(start))
    stop = min(n, int(stop))
    if stop < start:
        stop = start
    if fb.positions is None:
        fragments: List[BAT] = []
        offset = 0
        for frag in fb.fragments:
            lo = max(start - offset, 0)
            hi = min(stop - offset, len(frag))
            if lo < hi:
                fragments.append(_slice_view(frag, lo, hi))
            offset += len(frag)
        if not fragments:
            fragments = [_slice_view(fb.fragments[0], 0, 0)]
        return FragmentedBAT(fragments, policy=fb.policy)
    ranks = _global_ranks(fb)
    at = 0
    fragments = []
    positions: List[np.ndarray] = []
    for index, frag in enumerate(fb.fragments):
        fragment_ranks = ranks[at: at + len(frag)]
        keep = np.nonzero((fragment_ranks >= start) & (fragment_ranks < stop))[0]
        fragments.append(frag.take_positions(keep))
        positions.append(fb.positions[index][keep])
        at += len(frag)
    return FragmentedBAT(fragments, positions, policy=fb.policy)


def topn(
    fb: FragmentedBAT, n: int, *, descending: bool = True,
    workers: Optional[int] = None,
) -> BAT:
    """Fragment-parallel :func:`repro.monet.kernel.topn`.

    Every global top-*n* BUN is a top-*n* BUN of its own fragment, so
    the candidate selection (the O(count) part) fans out per fragment
    and only ``nfragments * n`` candidates meet the final monolithic
    ``topn`` (which also restores the monolithic tie-break by global
    BUN position).  The result is a small monolithic BAT: top-n ends
    the fragment-parallel part of a plan by construction."""
    if n < 0:
        raise KernelError("topn needs a non-negative n")
    n = int(n)
    if _probe_dtype(fb):
        # The monolithic object order reverses the whole stable sort for
        # descending (NILs first, ties latest-first), which per-fragment
        # candidate selection cannot compose with; topn returns a small
        # monolithic BAT anyway, so take the coalesced path.
        return _kernel.topn(fb.to_bat(), n, descending=descending)
    workers = _resolve_workers(fb, workers)

    def one(indexed: Tuple[int, BAT]) -> Tuple[BAT, np.ndarray]:
        index, frag = indexed
        pos = _kernel.topn_positions(frag, min(n, len(frag)), descending=descending)
        return frag.take_positions(pos), fb.global_positions(index)[pos]

    results = map_fragments(one, list(enumerate(fb.fragments)), workers)
    candidates = FragmentedBAT(
        [r[0] for r in results], [r[1] for r in results], policy=fb.policy
    ).to_bat()
    return _kernel.topn(candidates, n, descending=descending)


def const(
    fb: FragmentedBAT, atom_name: str, value: Any, *, workers: Optional[int] = None
) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.const_bat`."""
    workers = _resolve_workers(fb, workers)
    fragments = map_fragments(
        lambda frag: _kernel.const_bat(frag, str(atom_name), value),
        fb.fragments,
        workers,
    )
    return FragmentedBAT(fragments, fb.positions, policy=fb.policy)


def outerjoin(
    fb: FragmentedBAT,
    right: Union[BAT, "FragmentedBAT"],
    *,
    workers: Optional[int] = None,
) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.outerjoin`:
    unmatched left BUNs keep NIL tails per fragment, with the matches
    coming from the shared grace-join build.  The build is partitioned
    and indexed once for the whole probe side (the previous
    per-fragment ``outerjoin_parts`` calls re-indexed the right operand
    once per probe fragment), and a fragmented right never coalesces.
    A monolithic dense right keeps the direct seqbase path: it has no
    build to share."""
    workers = _resolve_workers(fb, workers)
    if isinstance(right, BAT) and right.hdense:

        def one(indexed: Tuple[int, BAT]) -> Tuple[BAT, Optional[np.ndarray]]:
            index, frag = indexed
            left_positions, tail = _kernel.outerjoin_parts(frag, right)
            out = BAT(
                frag.head.take(left_positions), tail, hkey=frag.hkey and right.hkey
            )
            if fb.positions is None:
                return out, None
            return out, fb.positions[index][left_positions]

        results = map_fragments(one, list(enumerate(fb.fragments)), workers)
        positions = None if fb.positions is None else [r[1] for r in results]
        return FragmentedBAT([r[0] for r in results], positions, policy=fb.policy)

    matches = _grace_matches(fb, right, workers)
    right_hkey = _right_hkey(right)
    tail_atom = atom(right.ttype)
    results = []
    for index, frag in enumerate(fb.fragments):
        probe_positions, tail_values = matches[index]
        matched = np.zeros(len(frag), dtype=bool)
        matched[probe_positions] = True
        unmatched = np.nonzero(~matched)[0]
        nil_tail = tail_atom.make_array([None] * len(unmatched))
        all_positions = np.concatenate((probe_positions, unmatched))
        order = np.argsort(all_positions, kind="stable")
        if len(tail_values) == 0 and len(nil_tail) == 0:
            combined = tail_atom.make_array([])
        else:
            combined = np.concatenate((tail_values, nil_tail))
        left_positions = all_positions[order]
        out = BAT(
            frag.head.take(left_positions),
            Column(tail_atom, combined[order]),
            hkey=frag.hkey and right_hkey,
        )
        results.append(
            (
                out,
                None
                if fb.positions is None
                else fb.positions[index][left_positions],
            )
        )
    positions = None if fb.positions is None else [r[1] for r in results]
    return FragmentedBAT([r[0] for r in results], positions, policy=fb.policy)


# ----------------------------------------------------------------------
# Fragment-parallel grouping
# ----------------------------------------------------------------------


def _group_key(value: Any):
    """Hashable grouping key; NaN (dbl NIL) normalizes to one sentinel
    so every NaN lands in the same group, matching ``np.unique``'s
    treat-NaNs-as-equal behaviour in the monolithic kernel."""
    if isinstance(value, float) and value != value:
        return ("\0nan",)
    return value


def group(fb: FragmentedBAT, *, workers: Optional[int] = None) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.groups.group`.

    Two parallel passes around one tiny serial merge: (1) each fragment
    reports its distinct tail values with their minimal global BUN
    position, (2) the merge orders the distinct values by first global
    appearance -- reproducing the monolithic first-appearance group-oid
    assignment exactly -- and (3) each fragment relabels its tails with
    the global ids.  The result is fragmented identically to the input,
    so a following pump aggregate stays fragment-parallel."""
    workers = _resolve_workers(fb, workers)
    object_dtype = _probe_dtype(fb)

    def local_uniques(indexed: Tuple[int, BAT]) -> List[Tuple[Any, int]]:
        index, frag = indexed
        tails = frag.tail_values()
        if len(tails) == 0:
            return []
        gpos = fb.global_positions(index)
        if object_dtype:
            firsts: dict = {}
            for position, value in enumerate(tails.tolist()):
                key = _group_key(value)
                if key not in firsts:
                    firsts[key] = int(gpos[position])
            return list(firsts.items())
        # Per-fragment global positions are increasing, so np.unique's
        # first-occurrence index is the minimal global position.
        uniq, first_idx = np.unique(tails, return_index=True)
        return [
            (_group_key(value), int(position))
            for value, position in zip(uniq.tolist(), gpos[first_idx].tolist())
        ]

    per_fragment = map_fragments(local_uniques, list(enumerate(fb.fragments)), workers)
    firsts: dict = {}
    for entries in per_fragment:
        for key, position in entries:
            previous = firsts.get(key)
            if previous is None or position < previous:
                firsts[key] = position
    gid_by_key = {
        key: gid
        for gid, (key, _) in enumerate(sorted(firsts.items(), key=lambda kv: kv[1]))
    }

    def assign(frag: BAT) -> BAT:
        tails = frag.tail_values()
        if len(tails) == 0:
            ids = np.empty(0, dtype=np.int64)
        elif object_dtype:
            ids = np.asarray(
                [gid_by_key[_group_key(v)] for v in tails.tolist()], dtype=np.int64
            )
        else:
            uniq, inverse = np.unique(tails, return_inverse=True)
            local_gids = np.asarray(
                [gid_by_key[_group_key(v)] for v in uniq.tolist()], dtype=np.int64
            )
            ids = local_gids[inverse.astype(np.int64).ravel()]
        return BAT(frag.head, Column("oid", ids), hsorted=frag.hsorted, hkey=frag.hkey)

    fragments = map_fragments(assign, fb.fragments, workers)
    return FragmentedBAT(fragments, fb.positions, policy=fb.policy)


# ----------------------------------------------------------------------
# Fragment-parallel order-sensitive operators: sort / unique / refine
#
# These were the last operators forcing a coalesce inside fragmented
# plans.  The shared shape is two parallel passes around one small
# serial merge: per-fragment work (sort / dedup / local grouping) fans
# out on the thread pool, the merge resolves cross-fragment order or
# duplicates on already-reduced data, and the result is emitted as
# range-partitioned fragments so downstream operators keep running
# fragment-parallel.
# ----------------------------------------------------------------------


def _merge_two_runs(
    a: Tuple[np.ndarray, np.ndarray], b: Tuple[np.ndarray, np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge two key-sorted (keys, global positions) runs.

    ``side='right'`` makes the left run win ties; since range fragments
    hold strictly increasing global position blocks, that is exactly
    the monolithic stable sort's tie-break by BUN position.
    ``searchsorted`` gallops, so merging two runs costs
    O(len(b) * log(len(a))) comparisons plus one linear scatter.
    """
    keys_a, gpos_a = a
    keys_b, gpos_b = b
    if len(keys_a) == 0:
        return b
    if len(keys_b) == 0:
        return a
    insert = np.searchsorted(keys_a, keys_b, side="right")
    total = len(keys_a) + len(keys_b)
    positions_b = insert + np.arange(len(keys_b), dtype=np.int64)
    keys = np.empty(total, dtype=keys_a.dtype)
    gpos = np.empty(total, dtype=np.int64)
    keys[positions_b] = keys_b
    gpos[positions_b] = gpos_b
    from_a = np.ones(total, dtype=bool)
    from_a[positions_b] = False
    keys[from_a] = keys_a
    gpos[from_a] = gpos_a
    return keys, gpos


def _merge_runs(
    runs: List[Tuple[np.ndarray, np.ndarray]]
) -> Tuple[np.ndarray, np.ndarray]:
    """k-way merge by pairwise tournament: log2(k) levels, each a
    linear pass, so the whole merge is O(n log k) after the per-run
    sorts."""
    while len(runs) > 1:
        merged = [
            _merge_two_runs(runs[i], runs[i + 1])
            for i in range(0, len(runs) - 1, 2)
        ]
        if len(runs) % 2:
            merged.append(runs[-1])
        runs = merged
    return runs[0]


def _merge_partition_count(n: int, policy: FragmentationPolicy) -> int:
    """Output partitions for the sample-sort merge phase: at least
    enough to keep output fragments near the target size, and more when
    the data outgrows a cache-resident working set (~64k BUNs per
    partition keeps each merge's key+position arrays in L2, which is
    where the single-core win over the old streaming tournament comes
    from) -- capped at the merge fan-out (:data:`MERGE_FANOUT` is read
    live, so calibrated values apply to in-flight handles
    immediately)."""
    by_target = -(-n // policy.target_size)
    by_cache = n // (64 * 1024)
    return max(1, min(MERGE_FANOUT, max(by_target, by_cache)))


def _concat_values(columns: Sequence[AnyColumn], atom_type) -> np.ndarray:
    """Materialized concatenation of fragment columns -- the shared
    gather source the per-partition merge workers index by global BUN
    position."""
    arrays = [column.materialize() for column in columns]
    if atom_type.dtype == np.dtype(object):
        total = sum(len(a) for a in arrays)
        out = np.empty(total, dtype=object)
        at = 0
        for array in arrays:
            out[at: at + len(array)] = array
            at += len(array)
        return out
    if not arrays:
        return atom_type.make_array([])
    return np.concatenate(arrays)


def _sample_sort_merge(
    fb: FragmentedBAT,
    runs: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    workers: Optional[int],
) -> FragmentedBAT:
    """Parallel merge of key-sorted per-fragment runs by sample-sort
    partitioning.

    Pivots sampled from the runs (:func:`kernel.sample_pivots` over the
    monotone partition keys) cut every run at the same key boundaries
    (:func:`kernel.run_cut_points`), so each inter-pivot range touches
    a disjoint slice of every run and builds its output fragment
    **independently**: the per-partition galloping merges, the tail
    gathers and the output fragment construction all fan out on the
    thread pool.  Within a partition the run slices still hold strictly
    increasing global-position blocks, so the pairwise merge's
    left-run-wins tie-break reproduces the monolithic stable sort
    exactly.  Degenerate pivot samples (all-equal keys) dedupe to fewer
    partitions and in the limit fall back to the serial tournament
    merge -- correct, just less parallel."""
    head_atom = fb.fragments[0].head.atom_type
    tail_atom = fb.fragments[0].tail.atom_type
    target = fb.policy.target_size
    partitions = _merge_partition_count(len(fb), fb.policy)
    pivots = _kernel.sample_pivots(
        [pkeys for _, pkeys, _ in runs], partitions
    )
    if len(pivots) == 0:
        keys, gpos = _merge_runs([(keys, gpos) for keys, _, gpos in runs])
        head = Column(head_atom, keys)
        tail = _concat_columns([f.tail for f in fb.fragments], tail_atom, gpos)
        return _output_fragments(
            head,
            tail,
            fb.policy,
            hsorted=True,
            hkey=fb.nfragments == 1 and fb.fragments[0].hkey,
            tkey=fb.nfragments == 1 and fb.fragments[0].tkey,
        )
    bounds = [
        np.concatenate(
            ([0], _kernel.run_cut_points(pkeys, pivots), [len(keys)])
        )
        for keys, pkeys, _ in runs
    ]
    tails_concat = _concat_values([f.tail for f in fb.fragments], tail_atom)

    def build(partition: int) -> List[BAT]:
        slices = [
            (
                keys[bounds[r][partition]: bounds[r][partition + 1]],
                gpos[bounds[r][partition]: bounds[r][partition + 1]],
            )
            for r, (keys, _, gpos) in enumerate(runs)
        ]
        slices = [s for s in slices if len(s[0])]
        if not slices:
            return []
        keys_p, gpos_p = _merge_runs(slices)
        head = Column(head_atom, keys_p)
        tail = Column(tail_atom, tails_concat[gpos_p])
        return [
            BAT(
                _slice_column(head, start, min(len(keys_p), start + target)),
                _slice_column(tail, start, min(len(keys_p), start + target)),
                hsorted=True,
            )
            for start in range(0, len(keys_p), target)
        ]

    parts = map_fragments(build, list(range(len(pivots) + 1)), workers)
    fragments = [fragment for part in parts for fragment in part]
    return FragmentedBAT(fragments, policy=fb.policy)


def _output_fragments(
    head: AnyColumn,
    tail: AnyColumn,
    policy: FragmentationPolicy,
    *,
    hsorted: bool = False,
    tsorted: bool = False,
    hkey: bool = False,
    tkey: bool = False,
) -> FragmentedBAT:
    """Range-partition fully-built result columns into fragments of the
    policy's target size (zero-copy views)."""
    n = len(head)
    fragments: List[BAT] = []
    for start in range(0, n, policy.target_size):
        stop = min(n, start + policy.target_size)
        fragments.append(
            BAT(
                _slice_column(head, start, stop),
                _slice_column(tail, start, stop),
                hsorted=hsorted,
                tsorted=tsorted,
                hkey=hkey,
                tkey=tkey,
            )
        )
    if not fragments:
        fragments = [
            BAT(
                _slice_column(head, 0, 0),
                _slice_column(tail, 0, 0),
                hsorted=hsorted,
                tsorted=tsorted,
                hkey=hkey,
                tkey=tkey,
            )
        ]
    return FragmentedBAT(fragments, policy=policy)


def _rows_in_order(
    fb: FragmentedBAT, gather: np.ndarray, *, hsorted: bool = False
) -> FragmentedBAT:
    """Range-partitioned copy of *fb*'s rows in the order given by
    *gather*, an index array into the fragment-concatenation space."""
    frags = fb.fragments
    head = _concat_columns([f.head for f in frags], frags[0].head.atom_type, gather)
    tail = _concat_columns([f.tail for f in frags], frags[0].tail.atom_type, gather)
    return _output_fragments(head, tail, fb.policy, hsorted=hsorted)


def sort(fb: FragmentedBAT, *, workers: Optional[int] = None) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.sort`: every
    fragment sorts its head in its own thread (numpy's sorts release
    the GIL), then a **sample-sort merge** combines the runs: pivots
    sampled from the sorted runs range-partition the key space and each
    output partition merges its run slices independently, also in
    parallel (:func:`_sample_sort_merge`) -- no coalesce, no serial
    merge phase, and the plan around it stays fragment-parallel.  Equal
    heads keep global BUN order, exactly like the monolithic stable
    sort.  Already-sorted inputs (flagged or detected, fragment
    boundaries included) return unchanged.  Round-robin inputs scatter
    stably to BUN order first and sort the range-partitioned copy --
    run-order merging cannot break their interleaved ties correctly;
    object (str) heads merge via per-partition ``heapq``, parallel
    across partitions."""
    if len(fb) == 0:
        return fb
    if _kernel._is_object_column(fb.fragments[0].head):
        return _sort_object(fb, _resolve_workers(fb, workers))
    if fb.positions is not None:
        return _sort_scatter(fb, workers)
    if all(f.hsorted for f in fb.fragments) and _boundaries_nondecreasing(
        fb.fragments, head=True
    ):
        return fb
    workers = _resolve_workers(fb, workers)

    def one(indexed: Tuple[int, BAT]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        index, frag = indexed
        keys = frag.head_values()
        gpos = fb.global_positions(index)
        if not (frag.hsorted or _nondecreasing(keys)):
            order = np.argsort(keys, kind="stable")
            keys, gpos = keys[order], gpos[order]
        return keys, _kernel.partition_keys(keys), gpos

    runs = map_fragments(one, list(enumerate(fb.fragments)), workers)
    return _sample_sort_merge(fb, runs, workers)


def tsort(fb: FragmentedBAT, *, workers: Optional[int] = None) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.tsort`
    (``reverse . sort . reverse``; the reverses are O(1) views)."""
    return reverse(sort(reverse(fb), workers=workers))


def _nondecreasing(values: np.ndarray) -> bool:
    """Cheap actual-sortedness check (a NaN anywhere fails it, which
    just means the fragment argsorts -- correctness over shortcut)."""
    if len(values) <= 1:
        return True
    return bool(np.all(values[1:] >= values[:-1]))


def _sort_scatter(fb: FragmentedBAT, workers: Optional[int]) -> FragmentedBAT:
    """Sort a round-robin split: stably scatter the rows back into BUN
    order (a range-partitioned copy) and sort that.  The range
    sample-sort then breaks equal-key ties by position in the scattered
    copy, which *is* global BUN order -- exactly the monolithic stable
    sort -- while run-order merging over the original interleaved runs
    could not.  Positions of derived subsets are sparse, so the scatter
    goes through their ranks, not through the position values."""
    bun_order = np.argsort(np.concatenate(fb.positions), kind="stable")
    return sort(_rows_in_order(fb, bun_order), workers=workers)


def _object_pivots(
    runs: List[List[Tuple[bool, Any, int, int]]], partitions: int,
    *, oversample: int = 4,
) -> List[Tuple[bool, Any]]:
    """Sampled (is-NIL, value) pivot prefixes for the object merge:
    :func:`kernel.sample_pivots` over Python tuples.  A 2-tuple prefix
    compares below every full run entry sharing it, so ``bisect_left``
    cuts runs exactly like ``searchsorted(..., side='left')`` -- equal
    keys never straddle a partition boundary."""
    if partitions <= 1:
        return []
    samples: List[Tuple[bool, Any]] = []
    for run in runs:
        if not run:
            continue
        picks = _kernel.pivot_sample_positions(
            len(run), partitions, oversample=oversample
        )
        if picks is None:
            samples.extend(entry[:2] for entry in run)
        else:
            samples.extend(run[int(i)][:2] for i in picks)
    if not samples:
        return []
    samples.sort()
    return sorted(
        {
            samples[int(q)]
            for q in _kernel.pivot_quantile_positions(len(samples), partitions)
        }
    )


def _sort_object(fb: FragmentedBAT, workers: Optional[int]) -> FragmentedBAT:
    """Object (str) heads: per-fragment Python sorts partitioned at
    sampled pivots, every partition ``heapq``-merged in its own worker.
    The (is-NIL, value, global position) entry key reproduces the
    monolithic object sort exactly -- NILs last, ties in BUN order --
    and because the global position is *inside* the comparison key, the
    per-partition merges are order-correct for interleaved (round-robin)
    runs too."""
    import bisect

    offsets = np.concatenate(([0], np.cumsum(fb.fragment_sizes())))

    def one(indexed: Tuple[int, BAT]) -> List[Tuple[bool, Any, int, int]]:
        index, frag = indexed
        gpos = fb.global_positions(index)
        base = int(offsets[index])
        return sorted(
            (value is None, "" if value is None else value, int(position),
             base + local)
            for local, (value, position) in enumerate(
                zip(frag.head_values().tolist(), gpos.tolist())
            )
        )

    runs = map_fragments(one, list(enumerate(fb.fragments)), workers)
    pivots = _object_pivots(runs, _merge_partition_count(len(fb), fb.policy))
    if not pivots:
        gather = np.fromiter(
            (entry[3] for entry in heapq.merge(*runs)), dtype=np.int64,
            count=len(fb),
        )
        return _rows_in_order(fb, gather, hsorted=True)
    bounds = [
        [0] + [bisect.bisect_left(run, pivot) for pivot in pivots] + [len(run)]
        for run in runs
    ]

    def build(partition: int) -> np.ndarray:
        slices = [
            run[bounds[r][partition]: bounds[r][partition + 1]]
            for r, run in enumerate(runs)
        ]
        return np.fromiter(
            (entry[3] for entry in heapq.merge(*slices)), dtype=np.int64
        )

    gathers = map_fragments(build, list(range(len(pivots) + 1)), workers)
    return _rows_in_order(fb, np.concatenate(gathers), hsorted=True)


def unique(fb: FragmentedBAT, *, workers: Optional[int] = None) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.unique`: each
    fragment dedupes locally in its thread, the merge resolves
    cross-fragment duplicates on the reduced candidate set only
    (winner = smallest global BUN position, preserving first-seen
    order), and a parallel filter drops the losers in place -- the
    fragmentation shape survives."""
    workers = _resolve_workers(fb, workers)
    keep = _first_global_occurrences(fb, workers, heads=True, tails=True)
    return _keep_positions(fb, keep, workers)


def kunique(fb: FragmentedBAT, *, workers: Optional[int] = None) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.kunique` (duplicate
    *head* elimination, first BUN per head wins)."""
    if fb.nfragments == 1 and fb.fragments[0].hkey:
        return fb
    workers = _resolve_workers(fb, workers)
    keep = _first_global_occurrences(fb, workers, heads=True, tails=False)
    result = _keep_positions(fb, keep, workers)
    fragments = [
        BAT(f.head, f.tail, hsorted=f.hsorted, tsorted=f.tsorted, hkey=True,
            tkey=f.tkey)
        for f in result.fragments
    ]
    return FragmentedBAT(fragments, result.positions, policy=fb.policy)


def tunique(fb: FragmentedBAT, *, workers: Optional[int] = None) -> FragmentedBAT:
    """Fragment-parallel :func:`repro.monet.kernel.tunique`
    (``reverse . kunique . reverse``)."""
    return reverse(kunique(reverse(fb), workers=workers))


def _first_global_occurrences(
    fb: FragmentedBAT, workers: Optional[int], *, heads: bool, tails: bool
) -> np.ndarray:
    """Sorted global BUN positions of the first occurrence of every
    distinct key (head, tail, or both).  NILs dedupe under the identity
    rule -- one NaN/None survives -- matching the monolithic kernel
    (see the NIL semantics note in :mod:`repro.monet.kernel`)."""
    first = fb.fragments[0]
    object_dtype = (heads and _kernel._is_object_column(first.head)) or (
        tails and _kernel._is_object_column(first.tail)
    )
    if object_dtype:

        def candidates(indexed: Tuple[int, BAT]) -> dict:
            index, frag = indexed
            gpos = fb.global_positions(index)
            head_values = frag.head_list() if heads else None
            tail_values = frag.tail_list() if tails else None
            firsts: dict = {}
            for position in range(len(frag)):
                key = ()
                if heads:
                    key += (_kernel.nil_dedup_key(head_values[position]),)
                if tails:
                    key += (_kernel.nil_dedup_key(tail_values[position]),)
                if key not in firsts:
                    firsts[key] = int(gpos[position])
            return firsts

        per_fragment = map_fragments(
            candidates, list(enumerate(fb.fragments)), workers
        )
        winners: dict = {}
        for firsts in per_fragment:
            for key, position in firsts.items():
                previous = winners.get(key)
                if previous is None or position < previous:
                    winners[key] = position
        return np.sort(np.asarray(list(winners.values()), dtype=np.int64))

    def candidates(indexed: Tuple[int, BAT]) -> List[np.ndarray]:
        index, frag = indexed
        keys = []
        if heads:
            keys.append(_kernel.dedup_keys(frag.head))
        if tails:
            keys.append(_kernel.dedup_keys(frag.tail))
        firsts = _kernel.first_occurrences(*keys)
        gpos = fb.global_positions(index)
        return [key[firsts] for key in keys] + [gpos[firsts]]

    per_fragment = map_fragments(candidates, list(enumerate(fb.fragments)), workers)
    merged = [
        np.concatenate([p[i] for p in per_fragment])
        for i in range(len(per_fragment[0]))
    ]
    *key_arrays, gpos_concat = merged
    if len(gpos_concat) == 0:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort(tuple([gpos_concat] + list(reversed(key_arrays))))
    new_block = np.zeros(len(order), dtype=bool)
    new_block[0] = True
    for key in key_arrays:
        sorted_key = key[order]
        new_block[1:] |= sorted_key[1:] != sorted_key[:-1]
    return np.sort(gpos_concat[order[new_block]])


def _keep_positions(
    fb: FragmentedBAT, keep: np.ndarray, workers: Optional[int]
) -> FragmentedBAT:
    """Filter *fb* to the rows whose global BUN positions are in the
    sorted *keep* array, fragment-parallel and shape-preserving."""
    if fb.positions is None:
        offsets = np.concatenate(([0], np.cumsum(fb.fragment_sizes())))

        def one(indexed: Tuple[int, BAT]) -> BAT:
            index, frag = indexed
            lo = np.searchsorted(keep, offsets[index], side="left")
            hi = np.searchsorted(keep, offsets[index + 1], side="left")
            return frag.take_positions(keep[lo:hi] - offsets[index])

        fragments = map_fragments(one, list(enumerate(fb.fragments)), workers)
        return FragmentedBAT(fragments, policy=fb.policy)

    def one(indexed: Tuple[int, BAT]) -> Tuple[BAT, np.ndarray]:
        index, frag = indexed
        mine = fb.positions[index]
        found = np.searchsorted(keep, mine, side="left")
        hits = np.nonzero(found < len(keep))[0]
        member = np.zeros(len(mine), dtype=bool)
        if len(hits):
            member[hits] = keep[found[hits]] == mine[hits]
        local = np.nonzero(member)[0]
        return frag.take_positions(local), mine[local]

    results = map_fragments(one, list(enumerate(fb.fragments)), workers)
    return FragmentedBAT(
        [r[0] for r in results], [r[1] for r in results], policy=fb.policy
    )


def refine(
    grouping: FragmentedBAT,
    bat: Union[BAT, FragmentedBAT],
    *,
    workers: Optional[int] = None,
) -> Union[BAT, FragmentedBAT]:
    """Fragment-parallel :func:`repro.monet.groups.refine`: the same
    two parallel passes around a tiny serial merge as :func:`group`,
    over (old group id, value) pairs.  A monolithic *bat* operand is
    window-sliced to the grouping's fragments (range splits); anything
    misaligned falls back to the monolithic refine over coalesced
    views."""
    from repro.monet import groups as _groups

    if isinstance(bat, BAT):
        if grouping.positions is None and len(bat) == len(grouping):
            offsets = [0]
            for size in grouping.fragment_sizes():
                offsets.append(offsets[-1] + size)
            bat = FragmentedBAT(
                [
                    _slice_view(bat, offsets[k], offsets[k + 1])
                    for k in range(grouping.nfragments)
                ],
                policy=grouping.policy,
            )
        else:
            return _groups.refine(coalesce(grouping), bat)
    if not same_fragmentation(grouping, bat):
        return _groups.refine(coalesce(grouping), coalesce(bat))
    workers = _resolve_workers(grouping, workers)
    object_dtype = _kernel._is_object_column(bat.fragments[0].tail)

    def local(indexed: Tuple[int, Tuple[BAT, BAT]]):
        index, (group_frag, value_frag) = indexed
        old = group_frag.tail_values().astype(np.int64, copy=False)
        gpos = grouping.global_positions(index)
        if len(old) == 0:
            return [], np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        if object_dtype:
            codes = np.empty(len(old), dtype=np.int64)
            rep_keys: List[Tuple[int, Any]] = []
            rep_gpos: List[int] = []
            seen: dict = {}
            for position, (old_id, value) in enumerate(
                zip(old.tolist(), value_frag.tail_list())
            ):
                key = (old_id, _kernel.nil_dedup_key(value))
                code = seen.get(key)
                if code is None:
                    code = len(rep_keys)
                    seen[key] = code
                    rep_keys.append(key)
                    rep_gpos.append(int(gpos[position]))
                codes[position] = code
            return rep_keys, np.asarray(rep_gpos, dtype=np.int64), codes
        value_keys = _kernel.dedup_keys(value_frag.tail)
        order = np.lexsort((value_keys, old))
        sorted_old = old[order]
        sorted_values = value_keys[order]
        new_block = np.zeros(len(order), dtype=bool)
        new_block[0] = True
        new_block[1:] = (sorted_old[1:] != sorted_old[:-1]) | (
            sorted_values[1:] != sorted_values[:-1]
        )
        starts = np.nonzero(new_block)[0]
        codes = np.empty(len(order), dtype=np.int64)
        codes[order] = np.cumsum(new_block) - 1
        rep_keys = list(
            zip(sorted_old[starts].tolist(), sorted_values[starts].tolist())
        )
        # Stable lexsort keeps each block in local (therefore global)
        # position order, so the block start is the minimal position.
        return rep_keys, gpos[order[starts]], codes

    per_fragment = map_fragments(
        local, list(enumerate(zip(grouping.fragments, bat.fragments))), workers
    )
    firsts: dict = {}
    for rep_keys, rep_gpos, _ in per_fragment:
        for key, position in zip(rep_keys, rep_gpos.tolist()):
            previous = firsts.get(key)
            if previous is None or position < previous:
                firsts[key] = position
    gid_by_key = {
        key: gid
        for gid, (key, _) in enumerate(sorted(firsts.items(), key=lambda kv: kv[1]))
    }

    def assign(pair: Tuple[BAT, Tuple[list, np.ndarray, np.ndarray]]) -> BAT:
        group_frag, (rep_keys, _, codes) = pair
        if rep_keys:
            lookup = np.asarray([gid_by_key[key] for key in rep_keys], dtype=np.int64)
            ids = lookup[codes]
        else:
            ids = np.empty(0, dtype=np.int64)
        return BAT(
            group_frag.head,
            Column("oid", ids),
            hsorted=group_frag.hsorted,
            hkey=group_frag.hkey,
        )

    fragments = map_fragments(
        assign, list(zip(grouping.fragments, per_fragment)), workers
    )
    return FragmentedBAT(fragments, grouping.positions, policy=grouping.policy)


# ----------------------------------------------------------------------
# Fragment-parallel multiplex
# ----------------------------------------------------------------------


def same_fragmentation(a: FragmentedBAT, b: FragmentedBAT) -> bool:
    """True when *a* and *b* cover the same BUNs with identical
    fragment boundaries (the precondition for per-fragment positional
    alignment)."""
    if a.fragment_sizes() != b.fragment_sizes():
        return False
    if (a.positions is None) != (b.positions is None):
        return False
    if a.positions is not None:
        return all(
            np.array_equal(pa, pb) for pa, pb in zip(a.positions, b.positions)
        )
    return True


def coalesce(value: Any) -> Any:
    """FragmentedBAT -> monolithic BAT; anything else passes through."""
    return value.to_bat() if isinstance(value, FragmentedBAT) else value


def multiplex(op: str, *operands: Any, workers: Optional[int] = None):
    """Fragment-parallel :func:`repro.monet.multiplex.multiplex`.

    Runs per fragment when every FragmentedBAT operand shares one
    fragmentation; monolithic BAT operands are positionally sliced to
    the fragment windows (range splits only).  Any misalignment falls
    back to the monolithic multiplex over coalesced operands."""
    from repro.monet.multiplex import multiplex as monolithic_multiplex

    fbs = [x for x in operands if isinstance(x, FragmentedBAT)]
    if not fbs:
        return monolithic_multiplex(op, *operands)
    ref = fbs[0]
    aligned = all(same_fragmentation(ref, fb) for fb in fbs[1:])
    plain_bats = [x for x in operands if isinstance(x, BAT)]
    # Monolithic operands are positionally window-sliced, which is only
    # meaningful for range splits and equal lengths; anything else
    # coalesces so the monolithic multiplex applies its own alignment
    # guards (length/seqbase mismatches must keep raising).
    sliceable = ref.positions is None and all(
        len(x) == len(ref) for x in plain_bats
    )
    if not aligned or (plain_bats and not sliceable):
        return monolithic_multiplex(op, *(coalesce(x) for x in operands))
    workers = _resolve_workers(ref, workers)
    offsets = [0]
    for size in ref.fragment_sizes():
        offsets.append(offsets[-1] + size)

    def one(k: int) -> BAT:
        frag_operands = []
        for x in operands:
            if isinstance(x, FragmentedBAT):
                frag_operands.append(x.fragments[k])
            elif isinstance(x, BAT):
                frag_operands.append(_slice_view(x, offsets[k], offsets[k + 1]))
            else:
                frag_operands.append(x)
        return monolithic_multiplex(op, *frag_operands)

    fragments = map_fragments(one, list(range(ref.nfragments)), workers)
    return FragmentedBAT(fragments, ref.positions, policy=ref.policy)


# ----------------------------------------------------------------------
# Re-fragmentation of drifted intermediates
# ----------------------------------------------------------------------


def fold_tail(
    fb: FragmentedBAT,
    policy: Optional[FragmentationPolicy] = None,
    *,
    compact: bool = False,
) -> FragmentedBAT:
    """Fold drifted delta fragments back to policy size without
    coalescing.

    Two purely local passes; healthy fragments are shared by reference
    with the input in both:

    * every fragment larger than twice the policy target (the residue
      of bulk appends) is sliced into target-sized view fragments
      (numpy views -- no data copy);
    * with ``compact=True``, runs of adjacent *starved* fragments (the
      residue of tombstone deletes shrinking fragments below half the
      target) are concatenated back up to at most target size -- a
      bounded local concat per run, never a coalesce of the whole BAT.
      Compaction is opt-in because plan intermediates routinely carry
      small fragments (every selection shrinks them) and must not pay
      a copy per operator; only the merge daemon's registered-BAT pass
      (:func:`rebalance`) asks for it.

    This is the cheap half of reorganization: the merge daemon runs it
    continuously so deltas of both kinds fold back to the policy size
    while readers keep their snapshots."""
    policy = policy or fb.policy
    target = policy.target_size
    sizes = fb.fragment_sizes()
    oversized = max(sizes) > 2 * target
    starved = compact and len(sizes) > 1 and min(sizes) * 2 < target
    if not oversized and not starved:
        return fb
    out_fragments: List[BAT] = []
    out_positions: List[np.ndarray] = []
    for index, fragment in enumerate(fb.fragments):
        if len(fragment) <= 2 * target:
            out_fragments.append(fragment)
            if fb.positions is not None:
                out_positions.append(fb.positions[index])
            continue
        for start in range(0, len(fragment), target):
            stop = min(start + target, len(fragment))
            out_fragments.append(_slice_view(fragment, start, stop))
            if fb.positions is not None:
                out_positions.append(fb.positions[index][start:stop])
    if starved:
        out_fragments, out_positions = _compact_starved(
            out_fragments,
            out_positions if fb.positions is not None else None,
            target,
        )
    return FragmentedBAT(
        out_fragments,
        out_positions if fb.positions is not None else None,
        policy=policy,
        name=fb.name,
    )


def _compact_starved(
    fragments: List[BAT],
    positions: Optional[List[np.ndarray]],
    target: int,
) -> Tuple[List[BAT], List[np.ndarray]]:
    """Greedily merge runs of adjacent fragments whose combined size
    stays within *target*; empty fragments are dropped outright.  Each
    merge is one bounded concatenation (round-robin runs re-sort their
    merged positions so the sorted-positions invariant survives)."""
    out_frags: List[BAT] = []
    out_pos: List[np.ndarray] = []
    group: List[BAT] = []
    group_pos: List[np.ndarray] = []
    group_size = 0

    def flush() -> None:
        nonlocal group, group_pos, group_size
        if not group:
            return
        if len(group) == 1:
            out_frags.append(group[0])
            if positions is not None:
                out_pos.append(group_pos[0])
        else:
            merged, merged_positions = _merge_fragment_run(
                group, group_pos if positions is not None else None
            )
            out_frags.append(merged)
            if positions is not None:
                out_pos.append(merged_positions)
        group, group_pos, group_size = [], [], 0

    for index, fragment in enumerate(fragments):
        if len(fragment) == 0:
            continue
        if group and group_size + len(fragment) > target:
            flush()
        group.append(fragment)
        if positions is not None:
            group_pos.append(positions[index])
        group_size += len(fragment)
    flush()
    if not out_frags:
        out_frags = [
            fragments[0].take_positions(np.empty(0, dtype=np.int64))
        ]
        out_pos = [np.empty(0, dtype=np.int64)]
    return out_frags, out_pos


def _merge_fragment_run(
    frags: List[BAT], poss: Optional[List[np.ndarray]]
) -> Tuple[BAT, Optional[np.ndarray]]:
    """Concatenate an adjacent run of fragments into one (the local
    mirror of :meth:`FragmentedBAT._build_monolithic`, bounded by the
    run size)."""
    if poss is None:
        order = None
        merged_positions = None
    else:
        all_positions = np.concatenate(poss)
        order = np.argsort(all_positions, kind="stable")
        merged_positions = all_positions[order]
    head = _concat_columns(
        [f.head for f in frags], frags[0].head.atom_type, order
    )
    tail = _concat_columns(
        [f.tail for f in frags], frags[0].tail.atom_type, order
    )
    flags = _concat_flags(frags, order is None)
    return BAT(head, tail, **flags), merged_positions


def rebalance(
    fb: FragmentedBAT, policy: Optional[FragmentationPolicy] = None
) -> FragmentedBAT:
    """The merge daemon's reorganization pass for registered BATs:
    fold and compact locally, then re-partition when the balance has
    skewed beyond what local passes can repair.

    ``fold_tail`` fixes oversized fragments and *adjacent* starved
    runs, but a round-robin split whose delta tail keeps absorbing
    appends drifts into a persistent skew it cannot see: every
    fragment stays under twice the target and no starved run is
    adjacent, yet one fragment holds many times the rows of another,
    so fragment-parallel operators tail on the big one.  When the
    max/min spread exceeds one target unit -- or the fragment count has
    drifted past four times what the cardinality warrants -- this
    re-splits once through :func:`fragment_bat`, the one reorganization
    that *does* coalesce, which is why only the merge daemon calls it,
    under the same per-name CAS swap-in as the fold."""
    policy = policy or fb.policy
    folded = fold_tail(fb, policy, compact=True)
    sizes = folded.fragment_sizes()
    n = len(folded)
    ideal = max(1, -(-n // policy.target_size))
    count_drift = folded.nfragments > max(4, 4 * ideal)
    skew = (
        folded.positions is not None
        and len(sizes) > 1
        and max(sizes) - min(sizes) > policy.target_size
    )
    if not count_drift and not skew:
        return folded
    return fragment_bat(folded.to_bat(), policy)


def refragment(
    fb: FragmentedBAT, policy: Optional[FragmentationPolicy] = None
) -> FragmentedBAT:
    """Re-split *fb* when its fragmentation has drifted far from
    *policy* (defaults to the BAT's own policy).

    Selections shrink fragments and joins/appends grow them; most drift
    is harmless, so this only rebuilds when a fragment exceeds twice the
    target size (losing cache residency) or the fragment count exceeds
    four times what the current cardinality warrants (dispatch overhead
    dominating).  Oversized fragments are first folded by
    :func:`fold_tail` (slice views, no coalesce) -- the append path's
    delta tails resolve there; only when the fragment *count* has
    drifted does this coalesce once and re-split.  The MIL dispatch
    layer calls this on intermediates so whole pipelines keep a healthy
    fragmentation without per-operator tuning."""
    policy = policy or fb.policy
    n = len(fb)
    ideal = max(1, -(-n // policy.target_size))
    count_bound = max(4, 4 * ideal)
    if max(fb.fragment_sizes()) > 2 * policy.target_size:
        folded = fold_tail(fb, policy)
        if folded.nfragments <= count_bound:
            return folded
        fb = folded
    if fb.nfragments <= count_bound:
        return fb
    return fragment_bat(fb.to_bat(), policy)


# ----------------------------------------------------------------------
# Fragment-parallel aggregates
# ----------------------------------------------------------------------


def count(fb: FragmentedBAT) -> int:
    """Fragment count aggregate (trivially the sum of fragment sizes)."""
    return len(fb)


def sum_(fb: FragmentedBAT, *, workers: Optional[int] = None) -> Any:
    """Fragment-parallel :func:`repro.monet.aggregates.sum_`."""
    workers = _resolve_workers(fb, workers)
    partials = map_fragments(_agg.sum_, fb.fragments, workers)
    total = sum(partials)
    return float(total) if fb.ttype == "dbl" else int(total)


def max_(fb: FragmentedBAT, *, workers: Optional[int] = None) -> Any:
    """Fragment-parallel :func:`repro.monet.aggregates.max_`."""
    return _scalar_extreme(fb, workers, maximum=True)


def min_(fb: FragmentedBAT, *, workers: Optional[int] = None) -> Any:
    """Fragment-parallel :func:`repro.monet.aggregates.min_`."""
    return _scalar_extreme(fb, workers, maximum=False)


def _scalar_extreme(fb: FragmentedBAT, workers: Optional[int], *, maximum: bool) -> Any:
    workers = _resolve_workers(fb, workers)
    monolithic = _agg.max_ if maximum else _agg.min_
    partials = [p for p in map_fragments(monolithic, fb.fragments, workers) if p is not None]
    if not partials:
        return None
    if fb.ttype == "dbl":
        # np.max/np.min propagate NaN (dbl NIL) like the monolithic
        # kernel; Python's max()/min() would drop it order-dependently.
        reduced = np.max(np.asarray(partials, dtype=np.float64)) if maximum else np.min(
            np.asarray(partials, dtype=np.float64)
        )
        return float(reduced)
    return max(partials) if maximum else min(partials)


def avg(fb: FragmentedBAT, *, workers: Optional[int] = None) -> Optional[float]:
    """Fragment-parallel :func:`repro.monet.aggregates.avg` via partial
    (sum, count) pairs."""
    _agg._require_numeric(fb.fragments[0], "avg")
    workers = _resolve_workers(fb, workers)

    def one(frag: BAT) -> Tuple[float, int]:
        tails = frag.tail_values()
        return (float(tails.sum()) if len(tails) else 0.0, len(tails))

    partials = map_fragments(one, fb.fragments, workers)
    total = sum(p[0] for p in partials)
    n = sum(p[1] for p in partials)
    return total / n if n else None


def _check_aligned(values: FragmentedBAT, grouping: FragmentedBAT) -> None:
    if values.fragment_sizes() != grouping.fragment_sizes():
        raise KernelError(
            "fragmented pump aggregate requires identically fragmented "
            "values and grouping"
        )
    if (values.positions is None) != (grouping.positions is None):
        raise KernelError("fragmented pump aggregate: mismatched split strategies")
    if values.positions is not None:
        for a, b in zip(values.positions, grouping.positions):
            if not np.array_equal(a, b):
                raise KernelError(
                    "fragmented pump aggregate: fragments cover different BUNs"
                )


def _global_n_groups(
    grouping: FragmentedBAT, explicit: Optional[int], workers: Optional[int]
) -> int:
    if explicit is not None:
        return explicit
    maxima = map_fragments(
        lambda frag: int(frag.tail_values().max()) if len(frag) else -1,
        grouping.fragments,
        workers,
    )
    return max(maxima) + 1 if maxima else 0


def grouped_sum(
    values: FragmentedBAT,
    grouping: FragmentedBAT,
    n_groups: Optional[int] = None,
    *,
    workers: Optional[int] = None,
) -> BAT:
    """Fragment-parallel ``{sum}``: per-fragment partial sums combined
    by addition."""
    _check_aligned(values, grouping)
    workers = _resolve_workers(values, workers)
    size = _global_n_groups(grouping, n_groups, workers)
    partials = map_fragments(
        lambda pair: _agg.grouped_sum(pair[0], pair[1], n_groups=size).tail_values(),
        list(zip(values.fragments, grouping.fragments)),
        workers,
    )
    combined = np.sum(partials, axis=0) if partials else np.zeros(0)
    if values.ttype == "int":
        return BAT(VoidColumn(0, size), Column("int", combined.astype(np.int64)))
    return BAT(VoidColumn(0, size), Column("dbl", np.asarray(combined, dtype=np.float64)))


def grouped_count(
    values: FragmentedBAT,
    grouping: FragmentedBAT,
    n_groups: Optional[int] = None,
    *,
    workers: Optional[int] = None,
) -> BAT:
    """Fragment-parallel ``{count}``."""
    _check_aligned(values, grouping)
    workers = _resolve_workers(values, workers)
    size = _global_n_groups(grouping, n_groups, workers)
    partials = map_fragments(
        lambda pair: _agg.grouped_count(pair[0], pair[1], n_groups=size).tail_values(),
        list(zip(values.fragments, grouping.fragments)),
        workers,
    )
    combined = np.sum(partials, axis=0).astype(np.int64) if partials else np.zeros(0, np.int64)
    return BAT(VoidColumn(0, size), Column("int", combined))


def grouped_max(
    values: FragmentedBAT,
    grouping: FragmentedBAT,
    n_groups: Optional[int] = None,
    *,
    workers: Optional[int] = None,
) -> BAT:
    """Fragment-parallel ``{max}``; empty groups keep their NIL."""
    return _grouped_extreme(values, grouping, n_groups, workers, maximum=True)


def grouped_min(
    values: FragmentedBAT,
    grouping: FragmentedBAT,
    n_groups: Optional[int] = None,
    *,
    workers: Optional[int] = None,
) -> BAT:
    """Fragment-parallel ``{min}``; empty groups keep their NIL."""
    return _grouped_extreme(values, grouping, n_groups, workers, maximum=False)


def _grouped_extreme(values, grouping, n_groups, workers, *, maximum: bool) -> BAT:
    _check_aligned(values, grouping)
    _agg._require_numeric(values.fragments[0], "{extreme}")
    workers = _resolve_workers(values, workers)
    size = _global_n_groups(grouping, n_groups, workers)
    ufunc = np.maximum if maximum else np.minimum
    identity = -np.inf if maximum else np.inf

    # Partials mirror the monolithic kernel exactly: an NaN member
    # poisons its group (np.maximum/np.minimum propagate it, unlike
    # fmax/fmin), and a group empty everywhere stays at the +-inf
    # identity, which the monolithic isinf -> NIL rule then catches.
    def one(pair: Tuple[BAT, BAT]) -> np.ndarray:
        value_frag, group_frag = pair
        ids = _agg._aligned_group_ids(value_frag, group_frag)
        out = np.full(size, identity, dtype=np.float64)
        with np.errstate(invalid="ignore"):  # NaN members poison their group
            ufunc.at(out, ids, value_frag.tail_values().astype(np.float64))
        return out

    partials = map_fragments(one, list(zip(values.fragments, grouping.fragments)), workers)
    out = np.full(size, identity, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        for partial in partials:
            out = ufunc(out, partial)
    out[np.isinf(out)] = np.nan  # empty group -> dbl NIL
    if values.ttype == "int":
        ints = np.where(np.isnan(out), np.iinfo(np.int64).min, out).astype(np.int64)
        return BAT(VoidColumn(0, size), Column("int", ints))
    return BAT(VoidColumn(0, size), Column("dbl", out))


def grouped_avg(
    values: FragmentedBAT,
    grouping: FragmentedBAT,
    n_groups: Optional[int] = None,
    *,
    workers: Optional[int] = None,
) -> BAT:
    """Fragment-parallel ``{avg}`` via partial (sum, count) pairs."""
    _check_aligned(values, grouping)
    _agg._require_numeric(values.fragments[0], "{avg}")
    workers = _resolve_workers(values, workers)
    size = _global_n_groups(grouping, n_groups, workers)

    def one(pair: Tuple[BAT, BAT]) -> Tuple[np.ndarray, np.ndarray]:
        value_frag, group_frag = pair
        ids = _agg._aligned_group_ids(value_frag, group_frag)
        tails = value_frag.tail_values().astype(np.float64)
        return (
            np.bincount(ids, weights=tails, minlength=size),
            np.bincount(ids, minlength=size),
        )

    partials = map_fragments(one, list(zip(values.fragments, grouping.fragments)), workers)
    sums = np.sum([p[0] for p in partials], axis=0) if partials else np.zeros(0)
    counts = np.sum([p[1] for p in partials], axis=0) if partials else np.zeros(0)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.asarray(sums, dtype=np.float64) / counts
    return BAT(VoidColumn(0, size), Column("dbl", means))
