"""Recursive-descent parser for the MIL subset.

Grammar (EBNF):

.. code-block:: text

    program    := statement*
    statement  := IDENT ":=" expr ";"  |  expr ";"
    expr       := comparison
    comparison := additive (("="|"!="|"<"|"<="|">"|">=") additive)?
    additive   := term (("+"|"-") term)*
    term       := postfix (("*"|"/") postfix)*
    postfix    := primary ("." IDENT ["(" args ")"])*
    primary    := literal
               |  IDENT "(" args ")"          -- function call
               |  IDENT                       -- variable
               |  MULTIPLEX "(" args ")"      -- [op](...)
               |  PUMP "(" args ")"           -- {agg}(...)
               |  "(" expr ")"
    args       := expr ("," expr)*

Method calls without parentheses (``b.reverse``) are accepted, matching
MIL's chaining style.
"""

from __future__ import annotations

from typing import List

from repro.monet.errors import MILSyntaxError
from repro.monet.mil import ast
from repro.monet.mil.lexer import Token, tokenize

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers --------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise MILSyntaxError(
                f"expected {kind}, found {token.kind} {token.value!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def match(self, kind: str, value: str = None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        if value is not None and token.value != value:
            return False
        return True

    # -- grammar --------------------------------------------------------
    def program(self) -> ast.Program:
        statements = []
        while not self.match("EOF"):
            statements.append(self.statement())
        return ast.Program(statements=statements)

    def statement(self):
        token = self.peek()
        if token.kind == "IDENT" and self.tokens[self.position + 1].kind == "ASSIGN":
            name = self.advance().value
            self.expect("ASSIGN")
            expr = self.expr()
            self.expect("SEMI")
            return ast.Assign(name=name, expr=expr, line=token.line)
        expr = self.expr()
        self.expect("SEMI")
        return ast.ExprStatement(expr=expr, line=token.line)

    def expr(self):
        return self.comparison()

    def comparison(self):
        left = self.additive()
        if self.match("OP") and self.peek().value in _COMPARISON_OPS:
            op = self.advance().value
            right = self.additive()
            return ast.Infix(op=op, left=left, right=right, line=left.line)
        return left

    def additive(self):
        left = self.term()
        while self.match("OP") and self.peek().value in ("+", "-"):
            op = self.advance().value
            right = self.term()
            left = ast.Infix(op=op, left=left, right=right, line=left.line)
        return left

    def term(self):
        left = self.postfix()
        while self.match("OP") and self.peek().value in ("*", "/"):
            op = self.advance().value
            right = self.postfix()
            left = ast.Infix(op=op, left=left, right=right, line=left.line)
        return left

    def postfix(self):
        node = self.primary()
        while self.match("DOT"):
            self.advance()
            name_token = self.expect("IDENT")
            args: List = []
            if self.match("LPAREN"):
                args = self.call_args()
            node = ast.MethodCall(
                receiver=node, method=name_token.value, args=args,
                line=name_token.line,
            )
        return node

    def primary(self):
        token = self.peek()
        if token.kind == "INT":
            self.advance()
            return ast.Literal(value=int(token.value), atom="int", line=token.line)
        if token.kind == "FLT":
            self.advance()
            return ast.Literal(value=float(token.value), atom="dbl", line=token.line)
        if token.kind == "STR":
            self.advance()
            return ast.Literal(value=token.value, atom="str", line=token.line)
        if token.kind == "MULTIPLEX":
            self.advance()
            args = self.call_args()
            return ast.Multiplex(op=token.value, args=args, line=token.line)
        if token.kind == "PUMP":
            self.advance()
            args = self.call_args()
            return ast.Pump(agg=token.value, args=args, line=token.line)
        if token.kind == "IDENT":
            if token.value == "true":
                self.advance()
                return ast.Literal(value=True, atom="bit", line=token.line)
            if token.value == "false":
                self.advance()
                return ast.Literal(value=False, atom="bit", line=token.line)
            if token.value == "nil":
                self.advance()
                return ast.Literal(value=None, atom="str", line=token.line)
            self.advance()
            if self.match("LPAREN"):
                args = self.call_args()
                return ast.Call(func=token.value, args=args, line=token.line)
            return ast.Var(name=token.value, line=token.line)
        if token.kind == "LPAREN":
            self.advance()
            inner = self.expr()
            self.expect("RPAREN")
            return inner
        if token.kind == "OP" and token.value == "-":
            self.advance()
            operand = self.postfix()
            return ast.Call(func="neg", args=[operand], line=token.line)
        raise MILSyntaxError(
            f"unexpected token {token.kind} {token.value!r}",
            token.line,
            token.column,
        )

    def call_args(self) -> List:
        self.expect("LPAREN")
        args: List = []
        if not self.match("RPAREN"):
            args.append(self.expr())
            while self.match("COMMA"):
                self.advance()
                args.append(self.expr())
        self.expect("RPAREN")
        return args


def parse_program(text: str) -> ast.Program:
    """Parse MIL source text into a :class:`repro.monet.mil.ast.Program`."""
    return _Parser(tokenize(text)).program()


def parse_expression(text: str):
    """Parse a single MIL expression (no trailing semicolon needed)."""
    stripped = text.strip()
    if not stripped.endswith(";"):
        stripped += ";"
    program = parse_program(stripped)
    if len(program.statements) != 1 or not isinstance(
        program.statements[0], ast.ExprStatement
    ):
        raise MILSyntaxError("expected exactly one expression", 1, 1)
    return program.statements[0].expr
