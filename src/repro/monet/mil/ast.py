"""AST node types for the MIL subset.

Plain dataclasses; the interpreter pattern-matches on node class.  Every
node carries the source line for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Union


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)


@dataclass
class Program(Node):
    statements: List["Statement"] = field(default_factory=list)


Statement = Union["Assign", "ExprStatement"]


@dataclass
class Assign(Node):
    name: str = ""
    expr: "Expr" = None


@dataclass
class ExprStatement(Node):
    expr: "Expr" = None


Expr = Union[
    "Literal", "Var", "Call", "MethodCall", "Multiplex", "Pump", "Infix"
]


@dataclass
class Literal(Node):
    value: Any = None
    atom: str = "int"


@dataclass
class Var(Node):
    name: str = ""


@dataclass
class Call(Node):
    func: str = ""
    args: List["Expr"] = field(default_factory=list)


@dataclass
class MethodCall(Node):
    receiver: "Expr" = None
    method: str = ""
    args: List["Expr"] = field(default_factory=list)


@dataclass
class Multiplex(Node):
    op: str = ""
    args: List["Expr"] = field(default_factory=list)


@dataclass
class Pump(Node):
    agg: str = ""
    args: List["Expr"] = field(default_factory=list)


@dataclass
class Infix(Node):
    op: str = ""
    left: "Expr" = None
    right: "Expr" = None


def unparse(node) -> str:
    """Render an AST node back to MIL text (used for plan display and
    for optimizer golden tests)."""
    if isinstance(node, Program):
        return "\n".join(unparse(s) for s in node.statements)
    if isinstance(node, Assign):
        return f"{node.name} := {unparse(node.expr)};"
    if isinstance(node, ExprStatement):
        return f"{unparse(node.expr)};"
    if isinstance(node, Literal):
        if node.value is None:
            return "nil"
        if node.atom == "str":
            escaped = str(node.value).replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        if node.atom == "bit":
            return "true" if node.value else "false"
        return repr(node.value)
    if isinstance(node, Var):
        return node.name
    if isinstance(node, Call):
        return f"{node.func}({', '.join(unparse(a) for a in node.args)})"
    if isinstance(node, MethodCall):
        args = ", ".join(unparse(a) for a in node.args)
        return f"{unparse(node.receiver)}.{node.method}({args})"
    if isinstance(node, Multiplex):
        return f"[{node.op}]({', '.join(unparse(a) for a in node.args)})"
    if isinstance(node, Pump):
        return f"{{{node.agg}}}({', '.join(unparse(a) for a in node.args)})"
    if isinstance(node, Infix):
        return f"({unparse(node.left)} {node.op} {unparse(node.right)})"
    raise TypeError(f"cannot unparse {type(node).__name__}")
