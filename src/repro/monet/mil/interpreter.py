"""The MIL interpreter: executes parsed programs against a BBP.

The interpreter is deliberately simple -- MIL plans produced by the Moa
compiler are straight-line programs of assignments -- but it supports
everything a human would write interactively in the subset (chained
method calls, scalar arithmetic, ``print``).

Execution is *fragment-aware*: ``bat("name")`` resolves a fragmented
registration to its :class:`~repro.monet.fragments.FragmentedBAT`
handle (``pool.lookup_fragments``) instead of coalescing, and every
operator call goes through the dispatch layer of
:mod:`repro.monet.mil.builtins`, which routes to the fragment-parallel
kernel when the receiver is fragmented.  A whole pipeline
(``select -> join -> group -> aggregate``) therefore runs
fragment-parallel end-to-end; coalescing happens at most once, when the
final result (or an operator with no fragment-parallel counterpart)
actually needs the monolithic BAT.

Execution results are collected in :class:`MILResult`:

* ``value`` -- the value of the final statement (a BAT or scalar;
  fragmented values are coalesced here, the single materialization
  point of a fragmented plan);
* ``env`` -- the variable environment after the run (fragmented
  intermediates stay fragmented);
* ``printed`` -- output captured from ``print(...)`` statements;
* ``stats`` -- per-operator invocation counts (used by the E5/E10
  benchmarks to report plan shapes).

Interpreter instances hold no per-run mutable state, so one instance
may evaluate programs from many threads at once (the query service runs
every session's plans through executors shared this way).  Per-query
control -- deadline and cancellation -- is passed per call: ``run`` and
``run_program`` accept a ``checkpoint`` callable invoked between
statements; raising :class:`~repro.monet.errors.MILCancelled` from it
aborts the plan at statement granularity (a single long-running
operator finishes its statement first).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.monet import fragments
from repro.monet.bat import BAT
from repro.monet.bbp import BATBufferPool
from repro.monet.errors import MILRuntimeError
from repro.monet.fragments import FragmentationPolicy, FragmentedBAT
from repro.monet.mil import ast
from repro.monet.mil.builtins import has_builtin, invoke_builtin, invoke_pump
from repro.monet.mil.parser import parse_program
from repro.monet.multiplex import scalar_op


@dataclass
class MILResult:
    """Outcome of running a MIL program."""

    value: Any = None
    env: Dict[str, Any] = field(default_factory=dict)
    printed: List[str] = field(default_factory=list)
    stats: Counter = field(default_factory=Counter)
    #: Catalog epoch the plan's snapshot was pinned at (None when the
    #: pool offers no snapshots).  The write-path differential harness
    #: keys serial replays on this.
    epoch: Optional[int] = None
    #: The pinned :class:`~repro.monet.bbp.PoolSnapshot` every catalog
    #: access of this run resolved against (private to the run).
    snapshot: Any = field(default=None, repr=False, compare=False)


class MILInterpreter:
    """Evaluates MIL ASTs against a :class:`BATBufferPool`.

    ``fragment_policy`` governs how fragmented intermediates are
    re-fragmented when an operator makes them drift from the target
    size; the Moa executor threads the database's policy through here
    so Moa-compiled plans run fragment-parallel automatically.
    """

    def __init__(
        self,
        pool: Optional[BATBufferPool] = None,
        *,
        fragment_policy: Optional[FragmentationPolicy] = None,
    ):
        self.pool = pool if pool is not None else BATBufferPool()
        self.fragment_policy = fragment_policy

    # ------------------------------------------------------------------
    def run(
        self,
        source: str,
        env: Optional[Dict[str, Any]] = None,
        *,
        checkpoint: Optional[Callable[[], None]] = None,
        reader: Any = None,
    ) -> MILResult:
        """Parse and execute *source*; *env* provides initial variable
        bindings (the Moa executor passes query parameters this way)."""
        program = parse_program(source)
        return self.run_program(program, env, checkpoint=checkpoint,
                                reader=reader)

    def run_program(
        self,
        program: ast.Program,
        env: Optional[Dict[str, Any]] = None,
        *,
        checkpoint: Optional[Callable[[], None]] = None,
        reader: Any = None,
    ) -> MILResult:
        """Execute a parsed program.  *checkpoint*, when given, is
        called before every statement; it may raise
        :class:`~repro.monet.errors.MILCancelled` to abort a plan whose
        deadline passed or whose session disconnected.

        Catalog access is pinned to one epoch-stamped snapshot for the
        whole plan (``pool.read_snapshot()``): every ``bat("name")`` of
        the run resolves against the same frozen catalog, so a pipeline
        never observes a concurrent append or drop mid-plan.  Writes the
        plan itself issues (``persists``/``unpersists``) write through
        to the live pool and stay visible to the rest of the plan.

        *reader*, when given, is an already-pinned snapshot (or any
        pool-like catalog view) to resolve ``bat("name")`` against
        instead of pinning a fresh one -- this is how an open
        :class:`~repro.core.mirror.Transaction` holds one epoch across
        several MIL runs."""
        result = MILResult(env=dict(env or {}))
        if reader is None:
            reader = self.pool
            if hasattr(reader, "read_snapshot"):
                reader = reader.read_snapshot()
        result.epoch = getattr(reader, "epoch", None)
        result.snapshot = reader
        for statement in program.statements:
            if checkpoint is not None:
                checkpoint()
            if isinstance(statement, ast.Assign):
                value = self._eval(statement.expr, result)
                result.env[statement.name] = value
                result.value = value
            elif isinstance(statement, ast.ExprStatement):
                result.value = self._eval(statement.expr, result)
            else:  # pragma: no cover - parser cannot produce this
                raise MILRuntimeError(f"bad statement {statement!r}")
        if isinstance(result.value, FragmentedBAT):
            # The one coalesce of a fragmented plan: result return.
            result.value = result.value.to_bat()
        return result

    # ------------------------------------------------------------------
    def _eval(self, node, result: MILResult):
        if isinstance(node, ast.Literal):
            return node.value
        if isinstance(node, ast.Var):
            if node.name in result.env:
                return result.env[node.name]
            raise MILRuntimeError(
                f"undefined variable {node.name!r} (line {node.line})"
            )
        if isinstance(node, ast.Call):
            return self._call(node.func, [self._eval(a, result) for a in node.args],
                              result, node.line)
        if isinstance(node, ast.MethodCall):
            receiver = self._eval(node.receiver, result)
            args = [self._eval(a, result) for a in node.args]
            return self._call(node.method, [receiver, *args], result, node.line)
        if isinstance(node, ast.Multiplex):
            args = [self._eval(a, result) for a in node.args]
            result.stats[f"[{node.op}]"] += 1
            return fragments.multiplex(node.op, *args)
        if isinstance(node, ast.Pump):
            args = [self._eval(a, result) for a in node.args]
            result.stats[f"{{{node.agg}}}"] += 1
            if len(args) == 3:
                return invoke_pump(node.agg, args[0], args[1], int(args[2]))
            if len(args) == 2:
                return invoke_pump(node.agg, args[0], args[1])
            raise MILRuntimeError(
                f"{{{node.agg}}} takes (values, groups[, n_groups])"
            )
        if isinstance(node, ast.Infix):
            left = self._eval(node.left, result)
            right = self._eval(node.right, result)
            if isinstance(left, (BAT, FragmentedBAT)) or isinstance(
                right, (BAT, FragmentedBAT)
            ):
                raise MILRuntimeError(
                    f"infix {node.op} on BATs: use the multiplexed form "
                    f"[{node.op}] (line {node.line})"
                )
            result.stats[node.op] += 1
            return scalar_op(node.op, left, right)
        raise MILRuntimeError(f"cannot evaluate {type(node).__name__}")

    def _call(self, name: str, args: list, result: MILResult, line: int):
        result.stats[name] += 1
        pool = result.snapshot if result.snapshot is not None else self.pool
        if name == "bat":
            if len(args) != 1 or not isinstance(args[0], str):
                raise MILRuntimeError('bat() takes one string name')
            if pool.is_fragmented(args[0]):
                return pool.lookup_fragments(args[0], self.fragment_policy)
            return pool.lookup(args[0])
        if name == "persists":
            if len(args) != 2 or not isinstance(args[0], str):
                raise MILRuntimeError("persists(name, bat)")
            if isinstance(args[1], FragmentedBAT):
                return pool.register_fragmented(args[0], args[1], replace=True)
            return pool.register(args[0], args[1], replace=True)
        if name == "unpersists":
            if len(args) != 1 or not isinstance(args[0], str):
                raise MILRuntimeError("unpersists(name)")
            pool.drop(args[0])
            return None
        if name == "newoid":
            count = int(args[0]) if args else 1
            return pool.new_oids(count)
        if name == "print":
            rendered = _render(args[0]) if args else ""
            result.printed.append(rendered)
            return args[0] if args else None
        if has_builtin(name):
            try:
                return invoke_builtin(name, args, self.fragment_policy)
            except TypeError as exc:
                raise MILRuntimeError(f"{name}: {exc} (line {line})") from exc
        raise MILRuntimeError(f"unknown MIL operation {name!r} (line {line})")


def _render(value) -> str:
    """Human-readable rendering used by ``print`` (BATs shown as BUN
    lists, matching Monet's console output loosely)."""
    if isinstance(value, FragmentedBAT):
        value = value.to_bat()
    if isinstance(value, BAT):
        pairs = ", ".join(f"[{h!r},{t!r}]" for h, t in value.items())
        return f"#{len(value)}{{{pairs}}}"
    return repr(value)


def run_program(
    source: str,
    pool: Optional[BATBufferPool] = None,
    env: Optional[Dict[str, Any]] = None,
    *,
    fragment_policy: Optional[FragmentationPolicy] = None,
    checkpoint: Optional[Callable[[], None]] = None,
    reader: Any = None,
) -> MILResult:
    """One-shot convenience: run MIL *source* against *pool*."""
    return MILInterpreter(pool, fragment_policy=fragment_policy).run(
        source, env, checkpoint=checkpoint, reader=reader
    )
