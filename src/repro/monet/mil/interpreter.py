"""The MIL interpreter: executes parsed programs against a BBP.

The interpreter is deliberately simple -- MIL plans produced by the Moa
compiler are straight-line programs of assignments -- but it supports
everything a human would write interactively in the subset (chained
method calls, scalar arithmetic, ``print``).

Execution results are collected in :class:`MILResult`:

* ``value`` -- the value of the final statement (a BAT or scalar);
* ``env`` -- the variable environment after the run;
* ``printed`` -- output captured from ``print(...)`` statements;
* ``stats`` -- per-operator invocation counts (used by the E5/E10
  benchmarks to report plan shapes).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.monet.bat import BAT
from repro.monet.bbp import BATBufferPool
from repro.monet.errors import MILRuntimeError
from repro.monet.mil import ast
from repro.monet.mil.builtins import has_builtin, plain_builtin, pump_builtin
from repro.monet.mil.parser import parse_program
from repro.monet.multiplex import multiplex, scalar_op


@dataclass
class MILResult:
    """Outcome of running a MIL program."""

    value: Any = None
    env: Dict[str, Any] = field(default_factory=dict)
    printed: List[str] = field(default_factory=list)
    stats: Counter = field(default_factory=Counter)


class MILInterpreter:
    """Evaluates MIL ASTs against a :class:`BATBufferPool`."""

    def __init__(self, pool: Optional[BATBufferPool] = None):
        self.pool = pool if pool is not None else BATBufferPool()

    # ------------------------------------------------------------------
    def run(self, source: str, env: Optional[Dict[str, Any]] = None) -> MILResult:
        """Parse and execute *source*; *env* provides initial variable
        bindings (the Moa executor passes query parameters this way)."""
        program = parse_program(source)
        return self.run_program(program, env)

    def run_program(
        self, program: ast.Program, env: Optional[Dict[str, Any]] = None
    ) -> MILResult:
        result = MILResult(env=dict(env or {}))
        for statement in program.statements:
            if isinstance(statement, ast.Assign):
                value = self._eval(statement.expr, result)
                result.env[statement.name] = value
                result.value = value
            elif isinstance(statement, ast.ExprStatement):
                result.value = self._eval(statement.expr, result)
            else:  # pragma: no cover - parser cannot produce this
                raise MILRuntimeError(f"bad statement {statement!r}")
        return result

    # ------------------------------------------------------------------
    def _eval(self, node, result: MILResult):
        if isinstance(node, ast.Literal):
            return node.value
        if isinstance(node, ast.Var):
            if node.name in result.env:
                return result.env[node.name]
            raise MILRuntimeError(
                f"undefined variable {node.name!r} (line {node.line})"
            )
        if isinstance(node, ast.Call):
            return self._call(node.func, [self._eval(a, result) for a in node.args],
                              result, node.line)
        if isinstance(node, ast.MethodCall):
            receiver = self._eval(node.receiver, result)
            args = [self._eval(a, result) for a in node.args]
            return self._call(node.method, [receiver, *args], result, node.line)
        if isinstance(node, ast.Multiplex):
            args = [self._eval(a, result) for a in node.args]
            result.stats[f"[{node.op}]"] += 1
            return multiplex(node.op, *args)
        if isinstance(node, ast.Pump):
            args = [self._eval(a, result) for a in node.args]
            result.stats[f"{{{node.agg}}}"] += 1
            impl = pump_builtin(node.agg)
            if len(args) == 3:
                return impl(args[0], args[1], int(args[2]))
            if len(args) == 2:
                return impl(args[0], args[1])
            raise MILRuntimeError(
                f"{{{node.agg}}} takes (values, groups[, n_groups])"
            )
        if isinstance(node, ast.Infix):
            left = self._eval(node.left, result)
            right = self._eval(node.right, result)
            if isinstance(left, BAT) or isinstance(right, BAT):
                raise MILRuntimeError(
                    f"infix {node.op} on BATs: use the multiplexed form "
                    f"[{node.op}] (line {node.line})"
                )
            result.stats[node.op] += 1
            return scalar_op(node.op, left, right)
        raise MILRuntimeError(f"cannot evaluate {type(node).__name__}")

    def _call(self, name: str, args: list, result: MILResult, line: int):
        result.stats[name] += 1
        if name == "bat":
            if len(args) != 1 or not isinstance(args[0], str):
                raise MILRuntimeError('bat() takes one string name')
            return self.pool.lookup(args[0])
        if name == "persists":
            if len(args) != 2 or not isinstance(args[0], str):
                raise MILRuntimeError("persists(name, bat)")
            return self.pool.register(args[0], args[1], replace=True)
        if name == "unpersists":
            if len(args) != 1 or not isinstance(args[0], str):
                raise MILRuntimeError("unpersists(name)")
            self.pool.drop(args[0])
            return None
        if name == "newoid":
            count = int(args[0]) if args else 1
            return self.pool.new_oids(count)
        if name == "print":
            rendered = _render(args[0]) if args else ""
            result.printed.append(rendered)
            return args[0] if args else None
        if has_builtin(name):
            try:
                return plain_builtin(name)(*args)
            except TypeError as exc:
                raise MILRuntimeError(f"{name}: {exc} (line {line})") from exc
        raise MILRuntimeError(f"unknown MIL operation {name!r} (line {line})")


def _render(value) -> str:
    """Human-readable rendering used by ``print`` (BATs shown as BUN
    lists, matching Monet's console output loosely)."""
    if isinstance(value, BAT):
        pairs = ", ".join(f"[{h!r},{t!r}]" for h, t in value.items())
        return f"#{len(value)}{{{pairs}}}"
    return repr(value)


def run_program(
    source: str,
    pool: Optional[BATBufferPool] = None,
    env: Optional[Dict[str, Any]] = None,
) -> MILResult:
    """One-shot convenience: run MIL *source* against *pool*."""
    return MILInterpreter(pool).run(source, env)
