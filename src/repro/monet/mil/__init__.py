"""MIL: the Monet Interpreter Language front-end of the substitute kernel.

The real Mirror DBMS works by having the Moa logical layer *generate
MIL text* which the Monet server executes.  We reproduce that contract:
:mod:`repro.moa.compiler` emits MIL programs as strings, and this
package lexes, parses and interprets them against a
:class:`repro.monet.bbp.BATBufferPool`.

Supported surface (a faithful subset of MIL):

* assignments ``v := expr;`` and expression statements;
* method-style calls ``b.select(3).reverse.mark(oid(0))``;
* function-style calls ``join(a, b)``;
* multiplexed operators ``[+](a, b)``, ``[log](x)``;
* pump (grouped) aggregates ``{sum}(values, groups)``;
* catalog access ``bat("name")`` and persistence ``persists(name, b)``;
* literals (int, dbl, str, bit, ``nil``), ``oid(n)`` casts;
* ``print(expr);`` for inspection (captured in the result).

Execution is fragment-aware: programs over fragmented BBP
registrations run their operators fragment-parallel
(:mod:`repro.monet.fragments`) and coalesce at most once, at result
return -- see :mod:`repro.monet.mil.interpreter` and the dispatch
layer in :mod:`repro.monet.mil.builtins`.
"""

from repro.monet.mil.interpreter import MILInterpreter, run_program
from repro.monet.mil.lexer import tokenize
from repro.monet.mil.parser import parse_program

__all__ = ["MILInterpreter", "run_program", "tokenize", "parse_program"]
