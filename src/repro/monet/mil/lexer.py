"""Tokenizer for the MIL subset.

Token kinds:

``IDENT``     identifiers (also ``true``/``false``/``nil`` keywords)
``INT``       integer literal
``FLT``       floating literal
``STR``       double-quoted string with backslash escapes
``ASSIGN``    ``:=``
``MULTIPLEX`` ``[op]`` -- a multiplexed operator token, value is ``op``
``PUMP``      ``{agg}`` -- a pump aggregate token, value is ``agg``
``LPAREN``/``RPAREN``/``COMMA``/``DOT``/``SEMI``
``OP``        infix arithmetic/comparison operator

Comments: ``#`` to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.monet.errors import MILSyntaxError


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind},{self.value!r})"


_SIMPLE = {
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    ".": "DOT",
    ";": "SEMI",
}

#: Operators allowed inside ``[...]`` multiplex brackets and as infix.
_OP_CHARS = set("+-*/<>=!")

#: Multi-character operators, longest first.
_MULTI_OPS = ["<=", ">=", "!=", ":="]


def tokenize(text: str) -> List[Token]:
    """Tokenize a MIL program; raises :class:`MILSyntaxError` on junk."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if text.startswith(":=", i):
            tokens.append(Token("ASSIGN", ":=", line, column))
            i += 2
            column += 2
            continue
        if ch in _SIMPLE:
            # Disambiguate DOT from a float like ``.5`` (not produced by
            # our compiler, but humans type it).
            if ch == "." and i + 1 < n and text[i + 1].isdigit():
                j = i + 1
                while j < n and (text[j].isdigit()):
                    j += 1
                tokens.append(Token("FLT", text[i:j], line, column))
                column += j - i
                i = j
                continue
            tokens.append(Token(_SIMPLE[ch], ch, line, column))
            i += 1
            column += 1
            continue
        if ch == "[":
            j = text.find("]", i)
            if j < 0:
                raise MILSyntaxError("unterminated multiplex bracket", line, column)
            op = text[i + 1 : j].strip()
            if not op:
                raise MILSyntaxError("empty multiplex bracket", line, column)
            tokens.append(Token("MULTIPLEX", op, line, column))
            column += j - i + 1
            i = j + 1
            continue
        if ch == "{":
            j = text.find("}", i)
            if j < 0:
                raise MILSyntaxError("unterminated pump brace", line, column)
            agg = text[i + 1 : j].strip()
            if not agg.isidentifier():
                raise MILSyntaxError(f"bad pump aggregate {agg!r}", line, column)
            tokens.append(Token("PUMP", agg, line, column))
            column += j - i + 1
            i = j + 1
            continue
        if ch == '"':
            value, consumed = _scan_string(text, i, line, column)
            tokens.append(Token("STR", value, line, column))
            i += consumed
            column += consumed
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp and j + 1 < n and text[j + 1].isdigit():
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j + 1 < n and (
                    text[j + 1].isdigit() or text[j + 1] in "+-"
                ):
                    seen_exp = True
                    j += 1
                    if text[j] in "+-":
                        j += 1
                else:
                    break
            raw = text[i:j]
            kind = "FLT" if ("." in raw or "e" in raw or "E" in raw) else "INT"
            tokens.append(Token(kind, raw, line, column))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("IDENT", text[i:j], line, column))
            column += j - i
            i = j
            continue
        matched = False
        for op in _MULTI_OPS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, line, column))
                i += len(op)
                column += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _OP_CHARS:
            tokens.append(Token("OP", ch, line, column))
            i += 1
            column += 1
            continue
        raise MILSyntaxError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("EOF", "", line, column))
    return tokens


def _scan_string(text: str, start: int, line: int, column: int):
    """Scan a double-quoted string starting at *start*; returns
    (decoded value, consumed char count including quotes)."""
    assert text[start] == '"'
    out = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\":
            if i + 1 >= n:
                raise MILSyntaxError("dangling escape in string", line, column)
            nxt = text[i + 1]
            mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
            if nxt not in mapping:
                raise MILSyntaxError(f"bad escape \\{nxt}", line, column)
            out.append(mapping[nxt])
            i += 2
            continue
        if ch == '"':
            return "".join(out), i - start + 1
        if ch == "\n":
            raise MILSyntaxError("newline inside string literal", line, column)
        out.append(ch)
        i += 1
    raise MILSyntaxError("unterminated string literal", line, column)
