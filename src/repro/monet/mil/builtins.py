"""Builtin operator table binding MIL names to kernel functions.

Each builtin is registered under its MIL name and may be invoked both
function-style (``join(a, b)``) and method-style (``a.join(b)``); the
receiver becomes the first argument, exactly like MIL.

Two layers live here:

* the *plain* table (:func:`plain_builtin`) binding names to the
  monolithic :mod:`repro.monet.kernel` operators, and
* a *dispatch* layer (:func:`invoke_builtin` / :func:`invoke_pump`)
  that routes a call to the fragment-parallel implementation in
  :mod:`repro.monet.fragments` whenever the receiver is a
  :class:`~repro.monet.fragments.FragmentedBAT`, re-fragmenting the
  intermediate result under the active
  :class:`~repro.monet.fragments.FragmentationPolicy`.  The
  order-sensitive operators (``sort``/``tsort``,
  ``unique``/``kunique``/``tunique``, ``refine``) run fragment-parallel
  too (sample-sort / candidate-merge based), as do the set operators
  (``kunion``/``kintersect``, via a shared head-membership build), so a
  pipeline containing them still coalesces only at result return.  The
  few operators with no fragment-parallel counterpart
  (``group_sizes``, ``group_representatives``, ...) transparently
  coalesce their fragmented arguments first, so every MIL program stays
  valid over fragmented BATs.

The dispatch layer is also where the *executor backend* selection of
:mod:`repro.monet.fragments` takes effect: the
:class:`~repro.monet.fragments.FragmentationPolicy` threaded in from
``MirrorDBMS``/``MoaExecutor`` (and applied to drifted intermediates
here) carries an optional pinned backend, and every fragment-parallel
implementation resolves it -- or the live module default
(``REPRO_EXECUTOR_BACKEND`` / calibrated tuning) -- per call, so one
MIL program can run its GIL-bound object-dtype predicates on the
process pool while everything numeric stays on threads.

Arity is enforced uniformly: every builtin carries a signature entry,
and a wrong argument count raises :class:`MILRuntimeError` naming the
expected signature and the received count (method-style misuse like
``x.join()`` included -- it never surfaces as a bare ``TypeError``).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Optional, Tuple

from repro.monet import aggregates, fragments, groups, kernel
from repro.monet.bat import BAT, bat_from_pairs, empty_bat
from repro.monet.errors import MILRuntimeError
from repro.monet.fragments import FragmentationPolicy, FragmentedBAT


def _require_bat(value, op: str) -> BAT:
    if not isinstance(value, BAT):
        raise MILRuntimeError(f"{op} expects a BAT, got {type(value).__name__}")
    return value


#: name -> (min args, max args, human signature) with the method-style
#: receiver counted as the first argument.  ``None`` max means
#: unbounded.
_SIGNATURES: Dict[str, Tuple[int, Optional[int], str]] = {
    "select": (2, 3, "select(bat, value) or select(bat, low, high)"),
    "uselect": (2, 3, "uselect(bat, value) or uselect(bat, low, high)"),
    "likeselect": (2, 2, "likeselect(bat, pattern)"),
    "join": (2, 2, "join(left, right)"),
    "leftjoin": (2, 2, "leftjoin(left, right)"),
    "fetchjoin": (2, 2, "fetchjoin(left, right)"),
    "outerjoin": (2, 2, "outerjoin(left, right)"),
    "semijoin": (2, 2, "semijoin(left, right)"),
    "kdiff": (2, 2, "kdiff(left, right)"),
    "kunion": (2, 2, "kunion(left, right)"),
    "kintersect": (2, 2, "kintersect(left, right)"),
    "reverse": (1, 1, "reverse(bat)"),
    "mirror": (1, 1, "mirror(bat)"),
    "mark": (1, 2, "mark(bat[, base])"),
    "number": (1, 2, "number(bat[, base])"),
    "sort": (1, 1, "sort(bat)"),
    "tsort": (1, 1, "tsort(bat)"),
    "unique": (1, 1, "unique(bat)"),
    "kunique": (1, 1, "kunique(bat)"),
    "tunique": (1, 1, "tunique(bat)"),
    "slice": (3, 3, "slice(bat, start, stop)"),
    "topn": (2, 3, "topn(bat, n[, descending])"),
    "group": (1, 1, "group(bat)"),
    "refine": (2, 2, "refine(grouping, bat)"),
    "group_sizes": (1, 1, "group_sizes(grouping)"),
    "group_representatives": (2, 2, "group_representatives(grouping, bat)"),
    "count": (1, 1, "count(bat)"),
    "sum": (1, 1, "sum(bat)"),
    "max": (1, 1, "max(bat)"),
    "min": (1, 1, "min(bat)"),
    "avg": (1, 1, "avg(bat)"),
    "exist": (2, 2, "exist(bat, head_value)"),
    "find": (2, 2, "find(bat, head_value)"),
    "const": (3, 3, "const(bat, atom_name, value)"),
    "new": (2, 2, "new(head_type, tail_type)"),
    "insert": (3, 3, "insert(bat, head, tail)"),
    "oid": (1, 1, "oid(value)"),
    "int": (1, 1, "int(value)"),
    "dbl": (1, 1, "dbl(value)"),
    "str": (1, 1, "str(value)"),
    "bit": (1, 1, "bit(value)"),
    "neg": (1, 1, "neg(value)"),
    "isnil": (1, 1, "isnil(value)"),
    "log": (1, 1, "log(value)"),
    "exp": (1, 1, "exp(value)"),
    "sqrt": (1, 1, "sqrt(value)"),
}


def arity_error(name: str, got: int) -> MILRuntimeError:
    """The uniform wrong-argument-count error for builtin *name*."""
    _, _, signature = _SIGNATURES.get(name, (None, None, name))
    plural = "" if got == 1 else "s"
    return MILRuntimeError(f"{name} takes {signature}, got {got} argument{plural}")


def check_arity(name: str, got: int) -> None:
    entry = _SIGNATURES.get(name)
    if entry is None:
        return
    low, high, _ = entry
    if got < low or (high is not None and got > high):
        raise arity_error(name, got)


def _select(bat, *args):
    _require_bat(bat, "select")
    if len(args) == 1:
        return kernel.select(bat, args[0])
    if len(args) == 2:
        return kernel.select(bat, args[0], args[1])
    raise arity_error("select", len(args) + 1)


def _uselect(bat, *args):
    _require_bat(bat, "uselect")
    if len(args) == 1:
        return kernel.uselect(bat, args[0])
    if len(args) == 2:
        return kernel.uselect(bat, args[0], args[1])
    raise arity_error("uselect", len(args) + 1)


def _slice(bat, start, stop):
    _require_bat(bat, "slice")
    return kernel.slice_bat(bat, int(start), int(stop))


def _mark(bat, base=0):
    _require_bat(bat, "mark")
    return kernel.mark(bat, int(base))


def _number(bat, base=0):
    _require_bat(bat, "number")
    return kernel.number(bat, int(base))


def _topn(bat, n, descending=True):
    _require_bat(bat, "topn")
    return kernel.topn(bat, int(n), descending=bool(descending))


def _const(bat, atom_name, value):
    _require_bat(bat, "const")
    return kernel.const_bat(bat, str(atom_name), value)


def _new(head_type, tail_type):
    return empty_bat(str(head_type), str(tail_type))


def _insert(bat, head, tail):
    """Functional single-BUN insert: returns a new BAT with the pair
    appended (MIL's ``insert`` mutates; our BATs are immutable, and the
    Moa compiler never relies on aliasing)."""
    _require_bat(bat, "insert")
    pairs = bat.to_pairs()
    pairs.append((head, tail))
    return bat_from_pairs(bat.htype, bat.ttype, pairs)


_PLAIN: Dict[str, Callable[..., Any]] = {
    "select": _select,
    "uselect": _uselect,
    "likeselect": lambda b, p: kernel.likeselect(_require_bat(b, "likeselect"), str(p)),
    "join": lambda a, b: kernel.join(_require_bat(a, "join"), _require_bat(b, "join")),
    "leftjoin": lambda a, b: kernel.join(
        _require_bat(a, "leftjoin"), _require_bat(b, "leftjoin")
    ),
    "fetchjoin": lambda a, b: kernel.fetchjoin(
        _require_bat(a, "fetchjoin"), _require_bat(b, "fetchjoin")
    ),
    "outerjoin": lambda a, b: kernel.outerjoin(
        _require_bat(a, "outerjoin"), _require_bat(b, "outerjoin")
    ),
    "semijoin": lambda a, b: kernel.semijoin(
        _require_bat(a, "semijoin"), _require_bat(b, "semijoin")
    ),
    "kdiff": lambda a, b: kernel.kdiff(_require_bat(a, "kdiff"), _require_bat(b, "kdiff")),
    "kunion": lambda a, b: kernel.kunion(
        _require_bat(a, "kunion"), _require_bat(b, "kunion")
    ),
    "kintersect": lambda a, b: kernel.kintersect(
        _require_bat(a, "kintersect"), _require_bat(b, "kintersect")
    ),
    "reverse": lambda b: _require_bat(b, "reverse").reverse(),
    "mirror": lambda b: _require_bat(b, "mirror").mirror(),
    "mark": _mark,
    "number": _number,
    "sort": lambda b: kernel.sort(_require_bat(b, "sort")),
    "tsort": lambda b: kernel.tsort(_require_bat(b, "tsort")),
    "unique": lambda b: kernel.unique(_require_bat(b, "unique")),
    "kunique": lambda b: kernel.kunique(_require_bat(b, "kunique")),
    "tunique": lambda b: kernel.tunique(_require_bat(b, "tunique")),
    "slice": _slice,
    "topn": _topn,
    "group": lambda b: groups.group(_require_bat(b, "group")),
    "refine": lambda g, b: groups.refine(
        _require_bat(g, "refine"), _require_bat(b, "refine")
    ),
    "group_sizes": lambda g: groups.group_sizes(_require_bat(g, "group_sizes")),
    "group_representatives": lambda g, b: groups.group_representatives(
        _require_bat(g, "group_representatives"), _require_bat(b, "group_representatives")
    ),
    "count": lambda b: aggregates.count(_require_bat(b, "count")),
    "sum": lambda b: aggregates.sum_(_require_bat(b, "sum")),
    "max": lambda b: aggregates.max_(_require_bat(b, "max")),
    "min": lambda b: aggregates.min_(_require_bat(b, "min")),
    "avg": lambda b: aggregates.avg(_require_bat(b, "avg")),
    "exist": lambda b, v: kernel.exist(_require_bat(b, "exist"), v),
    "find": lambda b, v: _require_bat(b, "find").find(v),
    "const": _const,
    "new": _new,
    "insert": _insert,
    # scalar casts -- MIL writes oid(0), dbl(x), ...
    "oid": lambda v: int(v),
    "int": lambda v: int(v),
    "dbl": lambda v: float(v),
    "str": lambda v: str(v),
    "bit": lambda v: bool(v),
    "neg": lambda v: -v,
    "isnil": lambda v: v is None,
    # scalar math (BAT-wide versions are the multiplexed [log] etc.)
    "log": math.log,
    "exp": math.exp,
    "sqrt": math.sqrt,
}

#: Fragment-parallel counterparts, keyed like _PLAIN.  An entry is used
#: when the *receiver* (first argument) is a FragmentedBAT; missing
#: entries coalesce instead.  Every implementation accepts monolithic
#: or fragmented right-hand operands.
_FRAGMENT: Dict[str, Callable[..., Any]] = {
    "select": fragments.select,
    "uselect": fragments.uselect,
    "likeselect": lambda b, p: fragments.likeselect(b, str(p)),
    "join": fragments.join,
    "leftjoin": fragments.join,
    "fetchjoin": fragments.fetchjoin,
    "outerjoin": fragments.outerjoin,
    "semijoin": fragments.semijoin,
    "kdiff": fragments.antijoin,
    "kunion": fragments.kunion,
    "kintersect": fragments.kintersect,
    "reverse": fragments.reverse,
    "mirror": fragments.mirror,
    "mark": lambda b, base=0: fragments.mark(b, int(base)),
    "number": lambda b, base=0: fragments.number(b, int(base)),
    "sort": fragments.sort,
    "tsort": fragments.tsort,
    "unique": fragments.unique,
    "kunique": fragments.kunique,
    "tunique": fragments.tunique,
    "refine": fragments.refine,
    "slice": lambda b, start, stop: fragments.slice_(b, int(start), int(stop)),
    "topn": lambda b, n, descending=True: fragments.topn(
        b, int(n), descending=bool(descending)
    ),
    "const": fragments.const,
    "group": fragments.group,
    # Functional insert on a fragmented receiver goes through the
    # copy-on-write delta tail: the committed prefix fragments are
    # shared, only the tail is rebuilt -- no coalesce, O(tail) not
    # O(total).  (The monolithic _insert rebuilds from to_pairs().)
    "insert": lambda fb, head, tail: fb.append([(head, tail)]),
    "count": fragments.count,
    "sum": fragments.sum_,
    "max": fragments.max_,
    "min": fragments.min_,
    "avg": fragments.avg,
}

_PUMPS: Dict[str, Callable[..., BAT]] = {
    "sum": aggregates.grouped_sum,
    "count": aggregates.grouped_count,
    "max": aggregates.grouped_max,
    "min": aggregates.grouped_min,
    "avg": aggregates.grouped_avg,
    "prod": aggregates.grouped_prod,
}

_FRAGMENT_PUMPS: Dict[str, Callable[..., BAT]] = {
    "sum": fragments.grouped_sum,
    "count": fragments.grouped_count,
    "max": fragments.grouped_max,
    "min": fragments.grouped_min,
    "avg": fragments.grouped_avg,
}


def plain_builtin(name: str) -> Callable[..., Any]:
    """Monolithic kernel function for MIL name *name*; raises
    MILRuntimeError if unknown."""
    try:
        return _PLAIN[name]
    except KeyError:
        raise MILRuntimeError(f"unknown MIL operation {name!r}") from None


def has_builtin(name: str) -> bool:
    return name in _PLAIN


#: Builtins whose fragment-parallel implementations consume a
#: fragmented *right* operand without coalescing (the grace-join
#: family).  A monolithic receiver is fragmented on the fly for these,
#: so ``join(mono, frag)`` no longer coalesces the fragmented side.
_FRAGMENT_ANY_OPERAND = frozenset(
    {"join", "leftjoin", "fetchjoin", "outerjoin", "semijoin", "kdiff"}
)


def invoke_builtin(
    name: str, args: list, policy: Optional[FragmentationPolicy] = None
) -> Any:
    """Arity-checked builtin call with fragment-aware dispatch.

    When the receiver is fragmented and a fragment-parallel
    implementation exists, it runs fragment-parallel and the result is
    re-fragmented under *policy* if it drifted; the join family also
    accepts a monolithic receiver against a fragmented right operand
    (the receiver fragments on the fly, the right side stays
    fragmented).  Otherwise fragmented arguments coalesce (cached, at
    most once per BAT) and the monolithic implementation runs."""
    impl = plain_builtin(name)
    check_arity(name, len(args))
    if any(isinstance(a, FragmentedBAT) for a in args):
        fragmented = _FRAGMENT.get(name)
        if (
            fragmented is not None
            and name in _FRAGMENT_ANY_OPERAND
            and isinstance(args[0], BAT)
        ):
            args = [
                fragments.fragment_bat(args[0], policy or FragmentationPolicy()),
                *args[1:],
            ]
        if fragmented is not None and isinstance(args[0], FragmentedBAT):
            result = fragmented(*args)
            if isinstance(result, FragmentedBAT):
                result = fragments.refragment(result, policy)
            return result
        args = [fragments.coalesce(a) for a in args]
    return impl(*args)


def pump_builtin(agg: str) -> Callable[..., BAT]:
    """Monolithic pump aggregate implementation for ``{agg}``."""
    try:
        return _PUMPS[agg]
    except KeyError:
        raise MILRuntimeError(f"unknown pump aggregate {{{agg}}}") from None


def invoke_pump(
    agg: str, values: Any, grouping: Any, n_groups: Optional[int] = None
) -> BAT:
    """Pump aggregate with fragment-aware dispatch: identically
    fragmented (values, grouping) pairs -- the shape produced by a
    fragment-parallel ``group`` -- aggregate per fragment and combine
    partials; anything else coalesces to the monolithic pump."""
    if (
        isinstance(values, FragmentedBAT)
        and isinstance(grouping, FragmentedBAT)
        and fragments.same_fragmentation(values, grouping)
    ):
        impl = _FRAGMENT_PUMPS.get(agg)
        if impl is not None:
            return impl(values, grouping, n_groups)
    values = fragments.coalesce(values)
    grouping = fragments.coalesce(grouping)
    return pump_builtin(agg)(values, grouping, n_groups)
