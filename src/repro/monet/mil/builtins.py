"""Builtin operator table binding MIL names to kernel functions.

Each builtin is registered under its MIL name and may be invoked both
function-style (``join(a, b)``) and method-style (``a.join(b)``); the
receiver becomes the first argument, exactly like MIL.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict

from repro.monet import aggregates, groups, kernel
from repro.monet.bat import BAT, bat_from_pairs, empty_bat
from repro.monet.errors import MILRuntimeError


def _require_bat(value, op: str) -> BAT:
    if not isinstance(value, BAT):
        raise MILRuntimeError(f"{op} expects a BAT, got {type(value).__name__}")
    return value


def _select(bat, *args):
    _require_bat(bat, "select")
    if len(args) == 1:
        return kernel.select(bat, args[0])
    if len(args) == 2:
        return kernel.select(bat, args[0], args[1])
    raise MILRuntimeError(f"select takes 1 or 2 value arguments, got {len(args)}")


def _uselect(bat, *args):
    _require_bat(bat, "uselect")
    if len(args) == 1:
        return kernel.uselect(bat, args[0])
    if len(args) == 2:
        return kernel.uselect(bat, args[0], args[1])
    raise MILRuntimeError("uselect takes 1 or 2 value arguments")


def _slice(bat, start, stop):
    _require_bat(bat, "slice")
    return kernel.slice_bat(bat, int(start), int(stop))


def _mark(bat, base=0):
    _require_bat(bat, "mark")
    return kernel.mark(bat, int(base))


def _number(bat, base=0):
    _require_bat(bat, "number")
    return kernel.number(bat, int(base))


def _topn(bat, n, descending=True):
    _require_bat(bat, "topn")
    return kernel.topn(bat, int(n), descending=bool(descending))


def _const(bat, atom_name, value):
    _require_bat(bat, "const")
    return kernel.const_bat(bat, str(atom_name), value)


def _new(head_type, tail_type):
    return empty_bat(str(head_type), str(tail_type))


def _insert(bat, head, tail):
    """Functional single-BUN insert: returns a new BAT with the pair
    appended (MIL's ``insert`` mutates; our BATs are immutable, and the
    Moa compiler never relies on aliasing)."""
    _require_bat(bat, "insert")
    pairs = bat.to_pairs()
    pairs.append((head, tail))
    return bat_from_pairs(bat.htype, bat.ttype, pairs)


_PLAIN: Dict[str, Callable[..., Any]] = {
    "select": _select,
    "uselect": _uselect,
    "likeselect": lambda b, p: kernel.likeselect(_require_bat(b, "likeselect"), str(p)),
    "join": lambda l, r: kernel.join(_require_bat(l, "join"), _require_bat(r, "join")),
    "leftjoin": lambda l, r: kernel.join(_require_bat(l, "leftjoin"), _require_bat(r, "leftjoin")),
    "fetchjoin": lambda l, r: kernel.fetchjoin(_require_bat(l, "fetchjoin"), _require_bat(r, "fetchjoin")),
    "outerjoin": lambda l, r: kernel.outerjoin(_require_bat(l, "outerjoin"), _require_bat(r, "outerjoin")),
    "semijoin": lambda l, r: kernel.semijoin(_require_bat(l, "semijoin"), _require_bat(r, "semijoin")),
    "kdiff": lambda l, r: kernel.kdiff(_require_bat(l, "kdiff"), _require_bat(r, "kdiff")),
    "kunion": lambda l, r: kernel.kunion(_require_bat(l, "kunion"), _require_bat(r, "kunion")),
    "kintersect": lambda l, r: kernel.kintersect(_require_bat(l, "kintersect"), _require_bat(r, "kintersect")),
    "reverse": lambda b: _require_bat(b, "reverse").reverse(),
    "mirror": lambda b: _require_bat(b, "mirror").mirror(),
    "mark": _mark,
    "number": _number,
    "sort": lambda b: kernel.sort(_require_bat(b, "sort")),
    "tsort": lambda b: kernel.tsort(_require_bat(b, "tsort")),
    "unique": lambda b: kernel.unique(_require_bat(b, "unique")),
    "kunique": lambda b: kernel.kunique(_require_bat(b, "kunique")),
    "tunique": lambda b: kernel.tunique(_require_bat(b, "tunique")),
    "slice": _slice,
    "topn": _topn,
    "group": lambda b: groups.group(_require_bat(b, "group")),
    "refine": lambda g, b: groups.refine(_require_bat(g, "refine"), _require_bat(b, "refine")),
    "group_sizes": lambda g: groups.group_sizes(_require_bat(g, "group_sizes")),
    "group_representatives": lambda g, b: groups.group_representatives(
        _require_bat(g, "group_representatives"), _require_bat(b, "group_representatives")
    ),
    "count": lambda b: aggregates.count(_require_bat(b, "count")),
    "sum": lambda b: aggregates.sum_(_require_bat(b, "sum")),
    "max": lambda b: aggregates.max_(_require_bat(b, "max")),
    "min": lambda b: aggregates.min_(_require_bat(b, "min")),
    "avg": lambda b: aggregates.avg(_require_bat(b, "avg")),
    "exist": lambda b, v: kernel.exist(_require_bat(b, "exist"), v),
    "find": lambda b, v: _require_bat(b, "find").find(v),
    "const": _const,
    "new": _new,
    "insert": _insert,
    # scalar casts -- MIL writes oid(0), dbl(x), ...
    "oid": lambda v: int(v),
    "int": lambda v: int(v),
    "dbl": lambda v: float(v),
    "str": lambda v: str(v),
    "bit": lambda v: bool(v),
    "neg": lambda v: -v,
    "isnil": lambda v: v is None,
    # scalar math (BAT-wide versions are the multiplexed [log] etc.)
    "log": math.log,
    "exp": math.exp,
    "sqrt": math.sqrt,
}

_PUMPS: Dict[str, Callable[..., BAT]] = {
    "sum": aggregates.grouped_sum,
    "count": aggregates.grouped_count,
    "max": aggregates.grouped_max,
    "min": aggregates.grouped_min,
    "avg": aggregates.grouped_avg,
    "prod": aggregates.grouped_prod,
}


def plain_builtin(name: str) -> Callable[..., Any]:
    """Kernel function for MIL name *name*; raises MILRuntimeError if
    unknown."""
    try:
        return _PLAIN[name]
    except KeyError:
        raise MILRuntimeError(f"unknown MIL operation {name!r}") from None


def has_builtin(name: str) -> bool:
    return name in _PLAIN


def pump_builtin(agg: str) -> Callable[..., BAT]:
    """Pump aggregate implementation for ``{agg}``."""
    try:
        return _PUMPS[agg]
    except KeyError:
        raise MILRuntimeError(f"unknown pump aggregate {{{agg}}}") from None
