"""The BAT operator kernel: Monet's set-at-a-time algebra.

Every operator consumes and produces whole BATs; there is no
tuple-at-a-time path anywhere in this module.  This is the property the
Mirror paper leans on ("allows often for set-at-a-time processing of
complex query expressions", section 2) and that [BWK98] shows to be the
performance foundation of the architecture.

Operator vocabulary (Monet names kept):

=================  ====================================================
``select``         BUNs whose tail lies in a value/range predicate
``uselect``        like ``select`` but tail replaced by void (head set)
``likeselect``     tail matches a substring pattern (for str tails)
``join``           natural join on left.tail = right.head
``fetchjoin``      positional join against a void-headed right operand
``outerjoin``      left outer variant of ``join`` (NIL-padded)
``semijoin``       BUNs of left whose *head* occurs in right's head
``antijoin``       BUNs of left whose head does *not* occur (``kdiff``)
``kintersect``     BUNs of left whose head occurs in right's head
``kunion``         left plus the right BUNs with unseen heads
``mark``           tail replaced by a fresh dense oid sequence
``number``         head replaced by a fresh dense oid sequence
``sort``           stable sort on head
``tsort``          stable sort on tail
``unique``         duplicate BUN elimination
``kunique``        duplicate head elimination (first BUN wins)
``slice_bat``      positional BUN range
=================  ====================================================

NIL semantics (two rules, both Monet-faithful):

* *Comparisons* -- select predicates and the join family, including
  ``semijoin``/``kdiff`` -- follow "NIL equals nothing": a NIL probe
  or build value (NaN for dbl, ``None`` for str) never matches, not
  even another NIL.  The radix-partitioned (grace) hash join applies
  the rule *before* partitioning: :func:`join_keys` masks NIL BUNs
  out ahead of the radix split, so no partition -- resident or
  spilled -- ever carries a NIL key and the partition-local probes
  need no NIL handling of their own.
* *Identity* operators -- ``unique``/``kunique``/``tunique`` here,
  ``group``/``refine`` in :mod:`repro.monet.groups`, **and the set
  operators ``kunion``/``kintersect``** -- treat all NILs of a column
  as **one value** (SQL DISTINCT / GROUP BY / UNION style): one NIL
  survives duplicate elimination, every NIL lands in the same group,
  and a NIL head *is* a member of a head set that contains a NIL.
  :func:`dedup_keys` encodes this rule for the vectorized paths (NaN
  keys collapse to a single sentinel); :func:`member_mask` applies it
  to set membership, so e.g. ``kunion`` does not duplicate NIL heads
  and ``kintersect`` keeps a NIL head when both sides have one.  The
  set operators previously inherited the comparison rule from the
  semijoin machinery, which silently duplicated NaN heads in unions --
  the identity rule makes them consistent with ``kunique`` (whose
  output is the natural "key set" the k-prefixed operators work on).
* *Appends/deltas introduce no third rule.*  A NIL appended into a
  delta tail (:meth:`BAT.append` / ``FragmentedBAT.append`` /
  ``BATBufferPool.append``, WAL replay included) is stored as the
  ordinary NIL representation of its atom (NaN for dbl, ``None`` for
  str, the int sentinel for int/oid) and thereafter follows exactly
  the split above: comparison operators never match it, identity
  operators fold it with every other NIL of the column -- whether the
  NIL arrived by bulk load or by append is indistinguishable to every
  operator.  The only append-specific caveat is *property flags*: an
  appended NIL conservatively clears ``tsorted``/``tkey`` (NaN is
  incomparable, so sortedness cannot be extended across it), which
  can only disable optimizations, never change results.
* *Tombstones and patches follow the same two rules.*  Deleting a BUN
  whose tail is NIL (:meth:`BAT.delete_positions` /
  ``FragmentedBAT.delete``) is an ordinary positional delete -- NIL
  confers no protection and needs no special casing, because deletion
  selects by *position*, never by value.  A delete is a monotone
  gather of the surviving BUNs, so all four property flags
  (``hsorted``/``tsorted``/``hkey``/``tkey``) survive unchanged:
  removing elements can break neither sortedness nor key-ness.
  Updating a BUN *to* NIL (:meth:`BAT.update_positions` /
  ``FragmentedBAT.update``) conservatively clears ``tkey`` (the new
  NIL may collide with an existing one under the identity rule) and
  clears ``tsorted`` unless the locally checked neighbour pairs still
  compare ordered -- a NaN patch value always fails that check, so a
  NIL patch clears ``tsorted`` too.  Head flags are untouched: patches
  rewrite tails only.  As with appends, the cleared flags can only
  disable optimizations, never change results.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.monet.atoms import coerce_value
from repro.monet.bat import BAT, AnyColumn, Column, VoidColumn
from repro.monet.errors import KernelError

# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------


def _is_object_column(column: AnyColumn) -> bool:
    return not column.is_void and column.atom_type.dtype == np.dtype(object)


def _positions(count: int) -> np.ndarray:
    return np.arange(count, dtype=np.int64)


#: Sentinel equality key shared by every NIL of a column under the
#: identity rule (see the NIL semantics note in the module docstring).
NIL_KEY = ("\0nil",)


def nil_dedup_key(value: Any):
    """Hashable dedup key for a Python-level value: NaN (dbl NIL) and
    ``None`` normalize to one sentinel so NILs compare equal under the
    identity rule, while remaining distinct from every real value."""
    if value is None:
        return NIL_KEY
    if isinstance(value, float) and value != value:
        return NIL_KEY
    return value


def _float_dedup_keys(values: np.ndarray) -> np.ndarray:
    """Monotone IEEE-754 bit transform of float64 values to uint64:
    order is preserved, ``-0.0`` keys equal ``+0.0``, and every NaN
    (dbl NIL) collapses to one maximal key -- sortable *and*
    NIL-equals-NIL, which raw floats are not (NaN != NaN would defeat
    vectorized duplicate detection)."""
    finite = np.where(values == 0.0, 0.0, values)
    bits = finite.astype(np.float64, copy=False).view(np.uint64)
    keys = np.where(
        bits >> np.uint64(63) == 1, ~bits, bits | np.uint64(1 << 63)
    )
    return np.where(np.isnan(values), np.uint64(0xFFFFFFFFFFFFFFFF), keys)


def dedup_keys(column: AnyColumn) -> Optional[np.ndarray]:
    """Integer sort keys over a column's stored values for duplicate
    elimination: equal keys iff the values are duplicates under the
    identity rule, and key order is a valid sort order.  ``None`` for
    object (str) columns, which take the hash-based Python path."""
    if column.is_void:
        return np.arange(
            column.seqbase, column.seqbase + len(column), dtype=np.int64
        )
    if column.atom_type.dtype == np.dtype(object):
        return None
    values = column.materialize()
    if values.dtype.kind == "f":
        return _float_dedup_keys(values)
    return values.astype(np.int64, copy=False)


def first_occurrences(*keys: np.ndarray) -> np.ndarray:
    """Positions of the first row of every distinct key combination,
    ascending -- the vectorized core of ``unique``/``kunique``
    (lexsort + block-boundary detection instead of a per-BUN Python
    loop).  Shared with the fragmented kernel, which applies it per
    fragment before its cross-fragment merge."""
    n = len(keys[0])
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort(tuple(reversed(keys)))
    new_block = np.zeros(n, dtype=bool)
    new_block[0] = True
    for key in keys:
        sorted_key = key[order]
        new_block[1:] |= sorted_key[1:] != sorted_key[:-1]
    return np.sort(order[new_block])


#: Identity-rule key of a dbl NIL under :func:`_float_dedup_keys`: all
#: NaNs collapse to this maximal uint64, which no finite or infinite
#: float maps to (it would need the 0x7FF..F bit pattern, itself a NaN).
DBL_NIL_KEY = np.uint64(0xFFFFFFFFFFFFFFFF)


def set_keyspace(*columns: AnyColumn) -> str:
    """The common key domain for set membership across *columns*:
    ``'object'`` when any column is object (str) dtype, ``'dbl'`` when
    any is float (numeric widening, like the join family), ``'int'``
    otherwise.  Probe and build sides must share one keyspace or their
    keys would not be comparable (int64 vs float-bit keys)."""
    if any(_is_object_column(column) for column in columns):
        return "object"
    if any(
        not column.is_void and column.atom_type.dtype.kind == "f"
        for column in columns
    ):
        return "dbl"
    return "int"


def member_keys(column: AnyColumn, keyspace: str):
    """Identity-rule membership keys of a column's stored values in
    *keyspace*: equal keys iff the values are one set element under the
    identity rule (all NILs collapse to one key, ``-0.0 == +0.0``).
    ``'object'`` yields a list of hashables (:func:`nil_dedup_key`),
    the numeric keyspaces an integer array."""
    if keyspace == "object":
        values = column.materialize()
        return [nil_dedup_key(value) for value in values.tolist()]
    values = column.materialize()
    if keyspace == "dbl":
        return _float_dedup_keys(values.astype(np.float64, copy=False))
    return values.astype(np.int64, copy=False)


def build_member_set(keys, keyspace: str):
    """One-time membership structure over build-side *keys*, probe-able
    via :func:`probe_member_set`.  Separated from the probe so
    fragmented execution builds it once (combining per-fragment key
    arrays) and shares it across probe fragments and across the set
    operators probing the same side."""
    if keyspace == "object":
        return set(keys)
    if len(keys) == 0:
        return np.empty(0, dtype=np.int64 if keyspace == "int" else np.uint64)
    return np.unique(keys)


def probe_member_set(
    keys, members, keyspace: str, *, nil_member: bool
) -> np.ndarray:
    """Boolean mask: which probe *keys* occur in *members*.

    ``nil_member=True`` is the identity rule (the set operators): a NIL
    probe is a member of a NIL-containing set, because all NILs are one
    value.  ``nil_member=False`` is the comparison rule (semijoin /
    kdiff): NIL is never a member, not even of a NIL-containing set,
    so NIL probes are masked out.  Int/oid NIL sentinels are ordinary
    integers under both rules (they always equaled themselves)."""
    if keyspace == "object":
        mask = np.fromiter(
            (key in members for key in keys), dtype=bool, count=len(keys)
        )
        if not nil_member and len(keys):
            mask &= np.fromiter(
                (key != NIL_KEY for key in keys), dtype=bool, count=len(keys)
            )
        return mask
    if len(keys) == 0:
        return np.zeros(0, dtype=bool)
    mask = np.isin(keys, members)
    if not nil_member and keyspace == "dbl":
        mask &= keys != DBL_NIL_KEY
    return mask


def member_mask(
    values: AnyColumn, lookup: AnyColumn, *, nil_member: bool
) -> np.ndarray:
    """Membership mask of *values*' stored values in *lookup*'s, under
    the identity rule (``nil_member=True``; ``kunion``/``kintersect``)
    or the comparison rule (``nil_member=False``; semijoin/kdiff).
    The monolithic composition of :func:`set_keyspace` /
    :func:`member_keys` / :func:`build_member_set` /
    :func:`probe_member_set`; fragmented execution uses the pieces."""
    keyspace = set_keyspace(values, lookup)
    members = build_member_set(member_keys(lookup, keyspace), keyspace)
    return probe_member_set(
        member_keys(values, keyspace), members, keyspace, nil_member=nil_member
    )


# ----------------------------------------------------------------------
# Sample-sort partitioning helpers
#
# Shared by the fragment-parallel merge phase of sort: pick pivots from
# key-sorted runs, cut every run at the pivots, and each inter-pivot
# range becomes one independently mergeable output partition.
# ----------------------------------------------------------------------


def partition_keys(values: np.ndarray) -> np.ndarray:
    """Total-order integer keys for range-partitioning sorted runs: a
    monotone image of the kernel sort order (NaN last, ``-0.0`` equals
    ``+0.0``) with no NaN in the key domain, so pivot selection and
    ``searchsorted`` cuts are well-defined for every dtype.  For
    integer dtypes this is the identity (a view, not a copy)."""
    if values.dtype.kind == "f":
        return _float_dedup_keys(values)
    return values.astype(np.int64, copy=False)


def pivot_sample_positions(
    run_length: int, partitions: int, *, oversample: int = 4
) -> Optional[np.ndarray]:
    """Regularly spaced sample positions for one sorted run of
    *run_length* entries, or ``None`` when the run is small enough to
    contribute every entry.  One scheme shared by the numeric and the
    object (tuple-keyed) sample-sort paths, so tuning the oversampling
    cannot make them drift apart."""
    per_run = oversample * partitions
    if run_length <= per_run:
        return None
    return np.linspace(0, run_length - 1, per_run).astype(np.int64)


def pivot_quantile_positions(pool_size: int, partitions: int) -> np.ndarray:
    """Positions of the *partitions* - 1 pivot quantiles in a sorted
    sample pool of *pool_size* entries (endpoints excluded)."""
    return np.linspace(0, pool_size, partitions + 1).astype(np.int64)[1:-1]


def sample_pivots(
    runs: "list[np.ndarray]", partitions: int, *, oversample: int = 4
) -> np.ndarray:
    """Pivot keys splitting key-sorted *runs* into at most *partitions*
    ranges of near-equal total size: every run contributes regularly
    spaced samples, the combined sample sorts, and the quantiles become
    pivots (classic sample-sort).  Returns <= partitions - 1 ascending
    distinct keys; degenerate inputs (all-equal keys) dedupe to fewer
    pivots -- possibly none -- which simply yields fewer, larger
    partitions (correct, just less parallel)."""
    if partitions <= 1:
        return np.empty(0, dtype=np.int64)
    samples = []
    for keys in runs:
        if len(keys) == 0:
            continue
        picks = pivot_sample_positions(len(keys), partitions, oversample=oversample)
        samples.append(keys if picks is None else keys[picks])
    if not samples:
        return np.empty(0, dtype=np.int64)
    pool = np.sort(np.concatenate(samples))
    return np.unique(pool[pivot_quantile_positions(len(pool), partitions)])


def run_cut_points(keys: np.ndarray, pivots: np.ndarray) -> np.ndarray:
    """Partition boundaries of one key-sorted run at *pivots*
    (``side='left'``): cut ``i`` starts partition ``i + 1``.  Equal
    keys land at or after their pivot's cut in *every* run, so a key
    value never straddles a partition boundary -- the per-partition
    merges can then restore the global tie-break by BUN position."""
    return np.searchsorted(keys, pivots, side="left")


def build_match_index(build: np.ndarray, object_dtype: bool):
    """One-time index over a join build side, probe-able via
    :func:`probe_match_index`.  Separated from the probe so fragmented
    execution builds it once and shares it across probe fragments.

    Numeric dtypes index by stable sort; object (string) dtypes by a
    dict of positions.  NIL build values (``None`` for str) are left out
    of the index: NIL never joins, not even with another NIL (Monet
    semantics; dbl NIL -- NaN -- is excluded on the probe side instead).
    """
    if object_dtype:
        index: dict = {}
        for position, value in enumerate(build):
            if value is None:
                continue
            index.setdefault(value, []).append(position)
        return index
    order = np.argsort(build, kind="stable")
    return order, build[order]


def probe_match_index(
    probe: np.ndarray, index, object_dtype: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """All (probe_position, build_position) matches of probe values in
    an indexed build side, ordered by probe position (stable).

    NIL probes never match: ``None`` (str NIL) misses the index by
    construction, and NaN (dbl NIL) probes are masked out -- a sorted
    build side puts its NaNs in one trailing block, which a vectorized
    ``searchsorted`` NaN probe would otherwise "equal", diverging from
    Monet's NIL-never-equals-NIL rule.
    """
    if len(probe) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if object_dtype:
        probe_positions = []
        build_positions = []
        for position, value in enumerate(probe):
            if value is None:
                continue
            hits = index.get(value)
            if hits:
                probe_positions.extend([position] * len(hits))
                build_positions.extend(hits)
        return (
            np.asarray(probe_positions, dtype=np.int64),
            np.asarray(build_positions, dtype=np.int64),
        )
    order, build_sorted = index
    lo = np.searchsorted(build_sorted, probe, side="left")
    hi = np.searchsorted(build_sorted, probe, side="right")
    counts = hi - lo
    if probe.dtype.kind == "f":
        counts[np.isnan(probe)] = 0
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    probe_positions = np.repeat(_positions(len(probe)), counts)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    intra = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], counts)
    sorted_positions = np.repeat(lo, counts) + intra
    build_positions = order[sorted_positions]
    return probe_positions, build_positions


def _match_positions(
    probe: np.ndarray, build: np.ndarray, object_dtype: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """All (probe_position, build_position) matches of probe values in
    build values, ordered by probe position (stable)."""
    if len(probe) == 0 or len(build) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return probe_match_index(probe, build_match_index(build, object_dtype), object_dtype)


def join_keys(column: AnyColumn, keyspace: str) -> Tuple[np.ndarray, np.ndarray]:
    """Comparison-rule join keys of *column*'s values in *keyspace*,
    plus the mask of non-NIL entries.

    NIL keys never join (see the NIL-semantics note in the module
    docstring), so the grace hash join drops masked-out BUNs *before*
    radix partitioning.  The ``"object"`` keyspace returns the raw
    value array (the dict match index consumes values directly); the
    numeric keyspaces return :func:`partition_keys`-style monotone
    transforms widened to the common keyspace, so an int column joined
    against a dbl column partitions and compares in one key domain.
    """
    values = column.materialize()
    if keyspace == "object":
        valid = np.fromiter(
            (value is not None for value in values), dtype=bool, count=len(values)
        )
        return values, valid
    if keyspace == "dbl":
        floats = values.astype(np.float64, copy=False)
        return _float_dedup_keys(floats), ~np.isnan(floats)
    return values.astype(np.int64, copy=False), np.ones(len(values), dtype=bool)


#: Fibonacci-golden-ratio multiplier scattering radix partition ids:
#: consecutive or stride-patterned key ranges (dense oids, foreign-key
#: blocks) spread evenly over any fanout instead of filling partitions
#: one at a time.
_RADIX_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def join_partition_ids(keys: np.ndarray, fanout: int, object_dtype: bool) -> np.ndarray:
    """Radix partition id (``0 .. fanout-1``) of every join key.

    Numeric keys mix through a Fibonacci multiplier before the modulo;
    object (str) keys hash with ``zlib.crc32`` over their UTF-8 bytes,
    which -- unlike Python's per-process randomized ``hash()`` -- is
    deterministic across interpreter processes, so the parent and the
    process-backend workers always agree on a key's partition.  NIL
    entries get partition 0; callers drop them beforehand via the
    :func:`join_keys` mask.
    """
    n = len(keys)
    if fanout <= 1:
        return np.zeros(n, dtype=np.int64)
    if object_dtype:
        # str(value) is the identity for str keys; mixed-type probes
        # (e.g. outerjoin's unchecked operands) hash deterministically
        # instead of crashing, and never match the str build anyway.
        return np.fromiter(
            (
                0
                if value is None
                else zlib.crc32(str(value).encode("utf-8", "surrogatepass")) % fanout
                for value in keys
            ),
            dtype=np.int64,
            count=n,
        )
    unsigned = keys.view(np.uint64) if keys.dtype == np.dtype(np.int64) else keys
    mixed = unsigned.astype(np.uint64, copy=False) * _RADIX_MULTIPLIER
    return (mixed % np.uint64(fanout)).astype(np.int64)


# ----------------------------------------------------------------------
# Selections
# ----------------------------------------------------------------------

#: Distinguishes "no high bound given" (equality select) from an
#: explicit ``high=None`` (open-ended range select).
_UNSET = object()


def select(
    bat: BAT,
    low: Any,
    high: Any = _UNSET,
    *,
    include_low: bool = True,
    include_high: bool = True,
) -> BAT:
    """BUNs of *bat* whose tail satisfies the predicate.

    ``select(b, v)`` is equality selection; ``select(b, lo, hi)`` is an
    inclusive range (bound inclusion controlled by the keyword flags;
    a ``None`` bound means unbounded on that side).
    """
    if high is _UNSET:
        return _select_equal(bat, low)
    return _select_range(bat, low, high, include_low, include_high)


def equal_mask(bat: BAT, value: Any) -> np.ndarray:
    """Boolean mask of BUNs whose tail equals *value* (the predicate of
    the equality :func:`select`, reusable by fragmented execution)."""
    if value is _UNSET:
        raise KernelError("select needs a value or range")
    if len(bat) == 0:
        return np.zeros(0, dtype=bool)
    tails = bat.tail_values()
    if _is_object_column(bat.tail):
        return np.fromiter((t == value for t in tails), dtype=bool, count=len(tails))
    coerced = coerce_value(value, bat.tail.atom_type)
    return tails == coerced


def range_mask(
    bat: BAT,
    low: Any,
    high: Any,
    include_low: bool = True,
    include_high: bool = True,
) -> np.ndarray:
    """Boolean mask of BUNs whose tail lies in the given range (the
    predicate of the range :func:`select`)."""
    if len(bat) == 0:
        return np.zeros(0, dtype=bool)
    tails = bat.tail_values()
    if _is_object_column(bat.tail):
        mask = np.ones(len(tails), dtype=bool)
        for position, value in enumerate(tails):
            if value is None:
                mask[position] = False
                continue
            if low is not None:
                if include_low and not (value >= low):
                    mask[position] = False
                elif not include_low and not (value > low):
                    mask[position] = False
            if mask[position] and high is not None:
                if include_high and not (value <= high):
                    mask[position] = False
                elif not include_high and not (value < high):
                    mask[position] = False
        return mask
    mask = np.ones(len(tails), dtype=bool)
    if low is not None:
        low_c = coerce_value(low, bat.tail.atom_type)
        mask &= (tails >= low_c) if include_low else (tails > low_c)
    if high is not None:
        high_c = coerce_value(high, bat.tail.atom_type)
        mask &= (tails <= high_c) if include_high else (tails < high_c)
    return mask


def like_mask(bat: BAT, pattern: str) -> np.ndarray:
    """Boolean mask of BUNs whose str tail contains *pattern*."""
    if bat.ttype != "str":
        raise KernelError("likeselect requires a str tail")
    tails = bat.tail_values()
    return np.fromiter(
        (t is not None and pattern in t for t in tails), dtype=bool, count=len(tails)
    )


def semijoin_mask(left: BAT, right: BAT) -> np.ndarray:
    """Boolean mask of left BUNs whose head occurs among right's heads
    (shared predicate of :func:`semijoin` and :func:`kdiff`)."""
    if right.hdense:
        heads = left.head_values()
        return (heads >= right.head.seqbase) & (
            heads < right.head.seqbase + len(right)
        )
    return member_mask(left.head, right.head, nil_member=False)


# ----------------------------------------------------------------------
# Picklable per-fragment task functions
#
# The process-pool executor backend (:mod:`repro.monet.fragments` /
# :mod:`repro.monet.shm`) cannot ship the closures the thread backend
# fans out with, so the offloadable per-fragment computations are
# registered here as module-level functions, addressable by name.  Each
# takes the fragment's predicate *column* (reconstructed in the worker
# from a shared-memory segment) plus plain picklable arguments, and
# returns a compact picklable result (qualifying local positions, or a
# membership key set) -- never a BAT, so only the small result crosses
# the process boundary.
# ----------------------------------------------------------------------


def _column_bat(column: AnyColumn) -> BAT:
    """A void-headed BAT over *column*, the shape the mask predicates
    expect (they only ever read the tail)."""
    return BAT(VoidColumn(0, len(column)), column)


def task_equal_positions(column: AnyColumn, value: Any) -> np.ndarray:
    """Local positions whose value equals *value* (equality select)."""
    return np.nonzero(equal_mask(_column_bat(column), value))[0].astype(np.int64)


def task_range_positions(
    column: AnyColumn, low: Any, high: Any, include_low: bool, include_high: bool
) -> np.ndarray:
    """Local positions whose value lies in the given range."""
    mask = range_mask(_column_bat(column), low, high, include_low, include_high)
    return np.nonzero(mask)[0].astype(np.int64)


def task_like_positions(column: AnyColumn, pattern: str) -> np.ndarray:
    """Local positions whose str value contains *pattern*."""
    return np.nonzero(like_mask(_column_bat(column), pattern))[0].astype(np.int64)


def task_member_positions(
    column: AnyColumn, members, keyspace: str, nil_member: bool, invert: bool
) -> np.ndarray:
    """Local positions whose membership key occurs (or, inverted, does
    not occur) in the broadcast *members* build."""
    mask = probe_member_set(
        member_keys(column, keyspace), members, keyspace, nil_member=nil_member
    )
    if invert:
        mask = ~mask
    return np.nonzero(mask)[0].astype(np.int64)


def task_member_key_set(column: AnyColumn, keyspace: str):
    """This fragment's contribution to a shared membership build: a set
    of identity-rule keys (object keyspace) or a deduplicated key array
    (numeric keyspaces)."""
    keys = member_keys(column, keyspace)
    if keyspace == "object":
        return set(keys)
    return np.unique(keys)


def task_join_partition_positions(
    column: AnyColumn, keyspace: str, fanout: int
) -> List[np.ndarray]:
    """Grace-join radix split of one fragment: the fragment's local BUN
    positions grouped by join-key partition, NIL keys dropped up front
    (comparison rule).  Shared by build and probe sides; the object
    (str) variant is a GIL-bound hashing loop, which is exactly the
    shape the process backend offloads."""
    fanout = int(fanout)
    keys, valid = join_keys(column, keyspace)
    positions = np.nonzero(valid)[0].astype(np.int64)
    ids = join_partition_ids(keys, fanout, keyspace == "object")[positions]
    return [positions[ids == partition] for partition in range(fanout)]


#: Name -> task function, the registry worker processes resolve task
#: names against (names pickle; module-level functions need not).
FRAGMENT_TASKS: Dict[str, Callable[..., Any]] = {
    "equal_positions": task_equal_positions,
    "range_positions": task_range_positions,
    "like_positions": task_like_positions,
    "member_positions": task_member_positions,
    "member_key_set": task_member_key_set,
    "join_partition_positions": task_join_partition_positions,
}


def _select_equal(bat: BAT, value: Any) -> BAT:
    return bat.take_positions(np.nonzero(equal_mask(bat, value))[0])


def _select_range(
    bat: BAT, low: Any, high: Any, include_low: bool, include_high: bool
) -> BAT:
    return bat.take_positions(
        np.nonzero(range_mask(bat, low, high, include_low, include_high))[0]
    )


def uselect(bat: BAT, low: Any, high: Any = _UNSET, **flags) -> BAT:
    """Like :func:`select` but the result tail is void (head-set result).

    Monet uses ``uselect`` when only the qualifying heads matter; the
    caller typically follows with ``.mirror()`` and a join.
    """
    if high is _UNSET:
        selected = _select_equal(bat, low)
    else:
        selected = _select_range(
            bat,
            low,
            high,
            flags.get("include_low", True),
            flags.get("include_high", True),
        )
    return BAT(
        selected.head,
        VoidColumn(0, len(selected)),
        hsorted=selected.hsorted,
        hkey=selected.hkey,
    )


def likeselect(bat: BAT, pattern: str) -> BAT:
    """Substring selection on string tails (Monet's ``likeselect`` with a
    ``%pattern%`` shape)."""
    return bat.take_positions(np.nonzero(like_mask(bat, pattern))[0])


# ----------------------------------------------------------------------
# Join family
# ----------------------------------------------------------------------


def check_join_types(tail_type: str, head_type: str) -> None:
    """Reject un-joinable column types (numeric widening is allowed);
    shared by the monolithic and fragmented join paths."""
    if tail_type != head_type and {tail_type, head_type} - {"int", "oid", "dbl"}:
        raise KernelError(
            f"join type mismatch: left tail {tail_type} vs right head {head_type}"
        )


def join(left: BAT, right: BAT) -> BAT:
    """Natural join on ``left.tail = right.head`` -> [left.head, right.tail].

    Equivalent to Monet's ``join``; preserves left BUN order (stable),
    which makes it double as ``leftjoin``.  When the right head is void
    the join degenerates to a positional fetch (``fetchjoin``).
    """
    check_join_types(left.ttype, right.htype)
    if right.hdense:
        return fetchjoin(left, right)
    probe = left.tail_values()
    build = right.head_values()
    probe_positions, build_positions = _match_positions(
        probe, build, _is_object_column(left.tail) or _is_object_column(right.head)
    )
    head = left.head.take(probe_positions)
    tail = right.tail.take(build_positions)
    return BAT(head, tail, hkey=left.hkey and right.hkey)


def fetchjoin(left: BAT, right: BAT) -> BAT:
    """Positional join: right must have a void (dense) head."""
    if not right.hdense:
        raise KernelError("fetchjoin requires a void-headed right operand")
    tails = left.tail_values()
    positions = tails - right.head.seqbase
    valid = (positions >= 0) & (positions < len(right))
    kept = np.nonzero(valid)[0]
    head = left.head.take(kept)
    tail = right.tail.take(positions[valid])
    return BAT(head, tail, hkey=left.hkey)


def outerjoin_parts(left: BAT, right: BAT) -> Tuple[np.ndarray, Column]:
    """The (left BUN positions, tail column) of the left outer join in
    output order.  Exposed separately so fragmented execution can map
    result rows back to their left rows (for round-robin position
    bookkeeping); :func:`outerjoin` is the plain packaging.

    NIL probes (NaN/None left tails) never match and therefore survive
    with NIL tails, like any other unmatched left BUN.
    """
    probe = left.tail_values()
    if right.hdense:
        positions = probe - right.head.seqbase
        valid = (positions >= 0) & (positions < len(right))
        probe_positions = np.nonzero(valid)[0]
        build_positions = positions[valid]
    else:
        build = right.head_values()
        probe_positions, build_positions = _match_positions(
            probe, build, _is_object_column(left.tail) or _is_object_column(right.head)
        )
    matched = np.zeros(len(left), dtype=bool)
    matched[probe_positions] = True
    unmatched = np.nonzero(~matched)[0]
    atom_type = right.tail.atom_type
    matched_tail = right.tail.take(build_positions).materialize()
    nil_tail = atom_type.make_array([None] * len(unmatched))
    all_positions = np.concatenate((probe_positions, unmatched))
    order = np.argsort(all_positions, kind="stable")
    if len(matched_tail) == 0 and len(nil_tail) == 0:
        combined = atom_type.make_array([])
    else:
        combined = np.concatenate((matched_tail, nil_tail))
    return all_positions[order], Column(atom_type, combined[order])


def outerjoin(left: BAT, right: BAT) -> BAT:
    """Left outer join: unmatched left BUNs survive with NIL tails."""
    left_positions, tail = outerjoin_parts(left, right)
    head = left.head.take(left_positions)
    return BAT(head, tail, hkey=left.hkey and right.hkey)


def semijoin(left: BAT, right: BAT) -> BAT:
    """BUNs of *left* whose **head** occurs among *right*'s heads
    (Monet ``semijoin``)."""
    return left.take_positions(np.nonzero(semijoin_mask(left, right))[0])


def kdiff(left: BAT, right: BAT) -> BAT:
    """BUNs of *left* whose head does **not** occur in *right*'s heads
    (Monet ``kdiff``; the anti-semijoin)."""
    return left.take_positions(np.nonzero(~semijoin_mask(left, right))[0])


def kintersect(left: BAT, right: BAT) -> BAT:
    """BUNs of *left* whose head occurs among *right*'s heads, under
    the **identity** NIL rule: a NIL head is kept when *right* also has
    a NIL head (all NILs are one set element; see the module
    docstring).  This is what distinguishes it from :func:`semijoin`,
    which follows the comparison rule (NIL matches nothing)."""
    mask = member_mask(left.head, right.head, nil_member=True)
    return left.take_positions(np.nonzero(mask)[0])


def check_kunion_types(left: BAT, right: BAT) -> None:
    """Reject un-unionable operands: ``kunion`` concatenates both
    sides' columns under the *left* atom types, so mismatched types
    would silently reinterpret right-side values (e.g. dbl heads
    truncated into an int column).  Shared by the monolithic and
    fragmented paths."""
    if left.htype != right.htype or left.ttype != right.ttype:
        raise KernelError(
            f"kunion type mismatch: [{left.htype},{left.ttype}] vs "
            f"[{right.htype},{right.ttype}]"
        )


def kunion(left: BAT, right: BAT) -> BAT:
    """*left* plus those BUNs of *right* whose head is not in *left*.

    Head membership follows the **identity** NIL rule: a NIL-headed
    right BUN is already "seen" when *left* has any NIL head, so unions
    never duplicate the NIL head (matching ``kunique``, whose output is
    the canonical head set these operators work on)."""
    check_kunion_types(left, right)
    mask = member_mask(right.head, left.head, nil_member=True)
    extra = right.take_positions(np.nonzero(~mask)[0])
    if len(extra) == 0:
        return left
    head = Column(
        left.head.atom_type,
        _concat_arrays(left.head_values(), extra.head_values(), left.head.atom_type),
    )
    tail = Column(
        left.tail.atom_type,
        _concat_arrays(left.tail_values(), extra.tail_values(), left.tail.atom_type),
    )
    return BAT(head, tail, hkey=left.hkey and right.hkey)


def _concat_arrays(a: np.ndarray, b: np.ndarray, atom_type) -> np.ndarray:
    if atom_type.dtype == np.dtype(object):
        out = np.empty(len(a) + len(b), dtype=object)
        out[: len(a)] = a
        out[len(a):] = b
        return out
    return np.concatenate((a, b))


# ----------------------------------------------------------------------
# Reconstruction
# ----------------------------------------------------------------------


def mark(bat: BAT, base: int = 0) -> BAT:
    """Replace the tail by a fresh dense oid sequence starting at *base*
    (Monet ``mark``) -- the standard way to mint intermediate oids."""
    return BAT(
        bat.head,
        VoidColumn(base, len(bat)),
        hsorted=bat.hsorted,
        hkey=bat.hkey,
    )


def number(bat: BAT, base: int = 0) -> BAT:
    """Replace the head by a fresh dense oid sequence (``mark`` flipped)."""
    return BAT(
        VoidColumn(base, len(bat)),
        bat.tail,
        tsorted=bat.tsorted,
        tkey=bat.tkey,
    )


def sort(bat: BAT) -> BAT:
    """Stable sort on head values (Monet ``sort``)."""
    if bat.hsorted:
        return bat
    heads = bat.head_values()
    if _is_object_column(bat.head):
        order = np.asarray(
            sorted(range(len(heads)), key=lambda i: (heads[i] is None, heads[i])),
            dtype=np.int64,
        )
    else:
        order = np.argsort(heads, kind="stable")
    result = bat.take_positions(order)
    return BAT(result.head, result.tail, hsorted=True, hkey=bat.hkey, tkey=bat.tkey)


def tsort(bat: BAT) -> BAT:
    """Stable sort on tail values (``reverse().sort().reverse()``)."""
    return sort(bat.reverse()).reverse()


def unique(bat: BAT) -> BAT:
    """Duplicate BUN elimination; keeps the first occurrence, preserves
    first-seen order (Monet ``unique``).  NILs dedupe under the
    identity rule (one NaN/None survives; see the module docstring)."""
    if bat.hkey or bat.tkey:
        return bat
    head_keys = dedup_keys(bat.head)
    tail_keys = dedup_keys(bat.tail)
    if head_keys is None or tail_keys is None:
        # Object (str) columns: hash-based first-seen scan.
        seen = set()
        keep = []
        for position, (head, tail) in enumerate(bat.items()):
            key = (nil_dedup_key(head), nil_dedup_key(tail))
            if key not in seen:
                seen.add(key)
                keep.append(position)
        return bat.take_positions(np.asarray(keep, dtype=np.int64))
    return bat.take_positions(first_occurrences(head_keys, tail_keys))


def kunique(bat: BAT) -> BAT:
    """Duplicate *head* elimination; first BUN per head wins.  NIL
    heads dedupe under the identity rule (one survives)."""
    if bat.hkey:
        return bat
    head_keys = dedup_keys(bat.head)
    if head_keys is None:
        seen = set()
        keep = []
        for position, value in enumerate(bat.head_values()):
            key = nil_dedup_key(value)
            if key not in seen:
                seen.add(key)
                keep.append(position)
        positions = np.asarray(keep, dtype=np.int64)
    else:
        positions = first_occurrences(head_keys)
    result = bat.take_positions(positions)
    return BAT(result.head, result.tail, hsorted=result.hsorted, hkey=True,
               tkey=result.tkey)


def tunique(bat: BAT) -> BAT:
    """Duplicate *tail* elimination; first BUN per tail wins."""
    return kunique(bat.reverse()).reverse()


def slice_bat(bat: BAT, start: int, stop: int) -> BAT:
    """Positional BUN range [start, stop) (Monet ``slice``)."""
    return bat.slice(start, stop)


def const_bat(head_like: BAT, atom_name: str, value: Any) -> BAT:
    """[head_like.head, constant] -- Monet's ``project`` (constant tail)."""
    from repro.monet.bat import column_from_values

    tail = column_from_values(atom_name, [value] * len(head_like))
    return BAT(head_like.head, tail, hsorted=head_like.hsorted, hkey=head_like.hkey)


def exist(bat: BAT, head_value: Any) -> bool:
    """Monet ``exist``: membership test on head values."""
    return bat.exists(head_value)


def _topn_sort_keys(tails: np.ndarray, descending: bool) -> np.ndarray:
    """Total-order uint64 sort keys for top-n selection: ascending key
    order is the requested tail order with NILs kept where the raw
    comparisons put them (NaN last in both directions, the int/oid
    sentinels at their numeric extremes).  A total order -- no NaN in
    the key domain -- is what makes the boundary-tie handling below
    exact."""
    keys = partition_keys(tails)
    if keys.dtype != np.uint64:
        # int64 order -> uint64 order by flipping the sign bit.
        keys = keys.view(np.uint64) ^ np.uint64(1 << 63)
    if descending:
        keys = ~keys
        if tails.dtype.kind == "f":
            # NaN (dbl NIL) sorts last under either direction.
            keys[np.isnan(tails)] = np.uint64(0xFFFFFFFFFFFFFFFF)
    return keys


def topn_positions(bat: BAT, n: int, *, descending: bool = True) -> np.ndarray:
    """BUN positions of the top-*n* BUNs by tail, in result order.
    Exposed separately so fragmented execution can run the per-fragment
    candidate selection and keep position bookkeeping.

    Ties on the tail break by BUN position (earlier first) -- including
    **membership** at the selection boundary: among BUNs tied at the
    n-th value, the earliest positions win the remaining slots.  (A
    bare ``argpartition`` would keep an arbitrary subset of the tied
    BUNs, which monolithic and fragmented execution could disagree on;
    the randomized MIL fuzzer caught exactly that.)"""
    if n < 0:
        raise KernelError("topn needs a non-negative n")
    tails = bat.tail_values()
    if _is_object_column(bat.tail):
        order = np.asarray(
            sorted(range(len(tails)), key=lambda i: (tails[i] is None, tails[i])),
            dtype=np.int64,
        )
        if descending:
            order = order[::-1]
        return order[:n]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    count = len(tails)
    keys = _topn_sort_keys(tails, descending)
    if n >= count:
        order = np.lexsort((np.arange(count, dtype=np.int64), keys))
        return order[:n]
    candidates = np.argpartition(keys, n)[:n]
    boundary = keys[candidates].max()
    strict = np.nonzero(keys < boundary)[0]
    tied = np.nonzero(keys == boundary)[0][: n - len(strict)]
    chosen = np.concatenate((strict, tied))
    # Order the selected BUNs; equal keys break by BUN position.
    inner = np.lexsort((chosen, keys[chosen]))
    return chosen[inner]


def topn(bat: BAT, n: int, *, descending: bool = True) -> BAT:
    """First *n* BUNs after sorting by tail (descending by default).

    Not a classical Monet primitive but the standard idiom
    ``b.reverse.sort.reverse.slice(0, n)``, packaged because every IR
    query ends with it.  Numeric tails use a partial sort
    (``argpartition``): O(count + n log n) instead of a full sort.
    """
    return bat.take_positions(topn_positions(bat, n, descending=descending))
