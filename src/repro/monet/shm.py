"""Shared-memory column transport for the process executor backend.

The fragment operators of :mod:`repro.monet.fragments` fan out on
threads by default, which is fine for numpy's GIL-releasing numeric
kernels but leaves object-dtype (str) operators serialized on the GIL.
The process backend ships those per-fragment computations to worker
processes instead, and this module is the transport: the parent
*exports* each fragment's predicate column into a
:mod:`multiprocessing.shared_memory` segment, workers *attach* the
segment, rebuild the column, run a registered task
(:data:`repro.monet.kernel.FRAGMENT_TASKS`) and return only the small
result -- qualifying positions or a membership key set -- over the
regular result pipe.

Segment layout:

numeric column
    the raw little-endian array bytes; the handle carries
    ``(name, atom, dtype, length)`` and the worker maps the array
    **zero-copy** with ``np.frombuffer`` over the shared buffer.
str (object) column
    a length-prefixed encoded heap of UTF-8 strings.  The *format* is
    modeled by :func:`repro.monet.heap.encode_str_heap` (one length
    word per value, NIL marked, then the concatenated UTF-8 bytes);
    the *transport* writes it via the pickle protocol, whose
    ``BINUNICODE`` framing is exactly that layout -- an opcode, the
    byte length, the UTF-8 payload per string -- produced and parsed
    by one C-level pass.  That pass is what makes the backend viable:
    at 1M values the C codec round-trips in ~25 ms where a Python-loop
    heap codec costs ~600 ms, ten times the very scan the offload is
    trying to parallelize (measured; see ``bench_fragments
    --strings``).  The worker reconstructs the object array and
    releases the mapping immediately.
void column
    no segment at all; the handle is ``(seqbase, count)``.
broadcast blob
    an arbitrary pickled object (e.g. the shared membership build of
    the set operators) placed in one segment and attached by every
    worker, with a small per-process cache so each worker deserializes
    a given build once.

Lifetime: the parent owns every segment and unlinks it as soon as the
fan-out completes (:func:`release_segments`); workers close their
mappings inside the task.  Resource-tracker accounting stays balanced
because the spawn-context workers share the parent's tracker (see
:func:`_attach`), so a clean run emits no "leaked shared_memory"
warnings at interpreter exit -- the lifecycle tests assert this, plus
that :data:`_LIVE_SEGMENTS` (parent-side segments between export and
release) drains to empty.
"""

from __future__ import annotations

import os
import pickle
import secrets
from collections import OrderedDict
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.monet.bat import AnyColumn, Column, VoidColumn

try:  # pragma: no cover - import guard for shared_memory-less platforms
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

#: Prefix of every segment name this module creates; the leak tests
#: scan ``/dev/shm`` for leftovers carrying it.
SHM_PREFIX = "reprofrag"

#: Names of parent-side segments exported but not yet released.
_LIVE_SEGMENTS: set = set()


def available() -> bool:
    """True when :mod:`multiprocessing.shared_memory` importable."""
    return shared_memory is not None


def _new_segment(size: int):
    name = f"{SHM_PREFIX}{os.getpid():x}_{secrets.token_hex(6)}"
    segment = shared_memory.SharedMemory(name=name, create=True, size=max(1, size))
    _LIVE_SEGMENTS.add(segment.name)
    return segment


def _attach(name: str):
    """Worker-side attach.

    Python 3.11 registers shared-memory *attachments* with the
    resource tracker exactly like creations (bpo-39959; ``track=False``
    only exists from 3.13).  That is harmless here -- but only because
    of how the processes are wired: the spawn-context workers inherit
    the parent's tracker fd, and the tracker's registry is a *set*, so
    the worker's attach-register of an already-registered name is a
    no-op and the parent's ``unlink`` removes it exactly once.  Do NOT
    "fix" the 3.11 behavior by unregistering after attach: with the
    shared tracker that removes the parent's registration and every
    later unlink trips a tracker KeyError."""
    return shared_memory.SharedMemory(name=name)


def _detach(segment) -> None:
    try:
        segment.close()
    except BufferError:  # pragma: no cover - a view outlived the task
        pass


def release_segments(segments: List[Any]) -> None:
    """Parent-side cleanup after a fan-out: close and unlink every
    exported segment (workers only ever hold short-lived mappings)."""
    for segment in segments:
        try:
            segment.close()
        except BufferError:  # pragma: no cover
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        _LIVE_SEGMENTS.discard(segment.name)


# ----------------------------------------------------------------------
# Column export (parent) / load (worker)
# ----------------------------------------------------------------------


def export_column(column: AnyColumn) -> Tuple[tuple, List[Any]]:
    """Shared-memory handle for *column* plus the segments backing it
    (for the parent to release after the fan-out).  The handle is a
    plain picklable tuple."""
    if column.is_void:
        return ("void", column.seqbase, len(column)), []
    atom_name = column.atom_type.name
    values = column.materialize()
    if values.dtype == np.dtype(object):
        # The length-prefixed UTF-8 heap, written by the C pickler (see
        # the module docstring for why not a Python-loop codec).
        payload = pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)
        segment = _new_segment(len(payload))
        segment.buf[: len(payload)] = payload
        handle = ("obj", segment.name, atom_name, len(payload))
        return handle, [segment]
    raw = np.ascontiguousarray(values)
    segment = _new_segment(raw.nbytes)
    if len(raw):
        np.frombuffer(segment.buf, dtype=raw.dtype, count=len(raw))[:] = raw
    handle = ("num", segment.name, atom_name, str(raw.dtype), len(raw))
    return handle, [segment]


def load_column(handle: tuple) -> Tuple[AnyColumn, Optional[Any]]:
    """Worker-side inverse of :func:`export_column`.

    Returns ``(column, segment)``; numeric columns are zero-copy views
    into the still-open *segment* (the caller closes it once the task's
    result no longer references the buffer), str columns are decoded
    copies and come back with ``segment=None`` (already closed)."""
    kind = handle[0]
    if kind == "void":
        return VoidColumn(handle[1], handle[2]), None
    if kind == "num":
        _, name, atom_name, dtype_name, length = handle
        segment = _attach(name)
        values = np.frombuffer(segment.buf, dtype=np.dtype(dtype_name), count=length)
        return Column(atom_name, values), segment
    _, name, atom_name, size = handle
    segment = _attach(name)
    try:
        payload = bytes(segment.buf[:size])
    finally:
        _detach(segment)
    return Column(atom_name, pickle.loads(payload)), None


# ----------------------------------------------------------------------
# Broadcast blobs (shared build sides)
# ----------------------------------------------------------------------

#: Worker-side cache of deserialized broadcast blobs, keyed by segment
#: name (unique per export, so entries can never go stale).
_BLOB_CACHE: "OrderedDict[str, Any]" = OrderedDict()
_BLOB_CACHE_MAX = 8


def export_blob(obj: Any) -> Tuple[tuple, List[Any]]:
    """Pickle *obj* into one shared segment every worker can attach;
    used for build sides shared across all probe fragments (e.g. the
    membership set of the fragmented set operators)."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    segment = _new_segment(len(payload))
    segment.buf[: len(payload)] = payload
    return (segment.name, len(payload)), [segment]


def load_blob(handle: tuple) -> Any:
    """Worker-side blob fetch with a small per-process cache, so a
    build side broadcast to N fragments deserializes once per worker,
    not once per task."""
    name, size = handle
    if name in _BLOB_CACHE:
        _BLOB_CACHE.move_to_end(name)
        return _BLOB_CACHE[name]
    segment = _attach(name)
    try:
        payload = bytes(segment.buf[:size])
    finally:
        _detach(segment)
    obj = pickle.loads(payload)
    _BLOB_CACHE[name] = obj
    while len(_BLOB_CACHE) > _BLOB_CACHE_MAX:
        _BLOB_CACHE.popitem(last=False)
    return obj


# ----------------------------------------------------------------------
# The worker entry point
# ----------------------------------------------------------------------


def _copy_off_segment(result: Any) -> Any:
    """Deep-copy every ndarray in *result* (descending through list and
    tuple shells) so nothing aliases a shared-memory segment about to
    be detached."""
    if isinstance(result, np.ndarray):
        return result.copy()
    if isinstance(result, list):
        return [_copy_off_segment(item) for item in result]
    if isinstance(result, tuple):
        return tuple(_copy_off_segment(item) for item in result)
    return result


def run_column_task(
    task_name: str, handle: tuple, args: tuple, blob_handle: Optional[tuple] = None
) -> Any:
    """Execute registered task *task_name* over the column behind
    *handle* in a worker process.

    The task function comes from
    :data:`repro.monet.kernel.FRAGMENT_TASKS`; a *blob_handle* resolves
    to the broadcast object and is injected as the first argument after
    the column.  Only the (small, picklable) task result travels back.
    """
    from repro.monet import kernel

    fn = kernel.FRAGMENT_TASKS[task_name]
    column, segment = load_column(handle)
    try:
        if blob_handle is not None:
            result = fn(column, load_blob(blob_handle), *args)
        else:
            result = fn(column, *args)
        if segment is not None:
            # Never let a result view pin the shared buffer past the
            # task: copy unconditionally before the mapping closes
            # (ascontiguousarray would no-op on a contiguous view and
            # leave the result aliasing the unlinked segment).  Results
            # may also be containers of arrays (the grace-join radix
            # split returns one positions array per partition), so the
            # copy recurses through list/tuple shells.
            result = _copy_off_segment(result)
        return result
    finally:
        del column
        if segment is not None:
            _detach(segment)
