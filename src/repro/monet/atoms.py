"""Atom (base type) system of the Monet substitute.

Monet is *extensible at the atom level*: the kernel ships with a fixed
set of built-in atoms and modules may register new ones.  The Mirror
DBMS inherits exactly these base types at the logical level ("the base
types, such as integer and string, are inherited from the underlying
physical database" -- Mirror paper, section 2).

Built-in atoms
--------------

``oid``
    Object identifier; unsigned integer drawn from a global sequence.
    Stored as int64.  Dense oid sequences are represented *virtually*
    (Monet's ``void`` type) by :class:`repro.monet.bat.VoidColumn`.
``int``
    64-bit signed integer.
``dbl``
    IEEE double.
``str``
    Variable-length string (numpy object column, optionally
    dictionary-encoded through :class:`repro.monet.heap.StringHeap`).
``bit``
    Boolean.

NIL semantics
-------------

Every atom has a distinguished NIL value (Monet's ``nil``).  NIL is
represented by a sentinel per physical dtype: ``INT_NIL`` (int64 min),
``nan`` for ``dbl``, ``None`` for ``str``, and ``OID_NIL`` for oids.
:func:`is_nil` abstracts over these.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.monet.errors import AtomError

#: Sentinel NIL for the ``int`` and ``oid`` atoms (Monet uses the most
#: negative integer as int nil and the largest oid as oid nil).
INT_NIL = np.iinfo(np.int64).min
OID_NIL = np.iinfo(np.int64).max

#: Generic NIL marker used at the Python-value level.
NIL = None


@dataclass(frozen=True)
class AtomType:
    """Description of one physical base type.

    Parameters
    ----------
    name:
        The MIL-level type name (``"int"``, ``"oid"``, ...).
    dtype:
        The numpy dtype used for tail columns of this atom.
    nil:
        The in-column sentinel representing NIL.
    parse:
        Parser from string literals (used by the MIL front-end).
    is_nil_fn:
        Predicate deciding whether an in-column value is NIL.
    """

    name: str
    dtype: np.dtype
    nil: Any
    parse: Callable[[str], Any]
    is_nil_fn: Callable[[Any], bool] = field(repr=False, default=lambda v: v is None)

    def make_array(self, values) -> np.ndarray:
        """Build a tail array of this atom type from a Python iterable,
        mapping ``None`` to the atom's NIL sentinel."""
        vals = [self.nil if v is None else v for v in values]
        if self.dtype == np.dtype(object):
            arr = np.empty(len(vals), dtype=object)
            arr[:] = vals
            return arr
        return np.asarray(vals, dtype=self.dtype)

    def to_python(self, value):
        """Convert an in-column value back to a Python value (NIL -> None)."""
        if self.is_nil_fn(value):
            return None
        if self.name == "bit":
            return bool(value)
        if self.dtype == np.dtype(np.int64):
            return int(value)
        if self.dtype == np.dtype(np.float64):
            return float(value)
        return value


def _parse_int(text: str) -> int:
    return int(text)


def _parse_dbl(text: str) -> float:
    return float(text)


def _parse_str(text: str) -> str:
    return text


def _parse_bit(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("true", "t", "1"):
        return True
    if lowered in ("false", "f", "0"):
        return False
    raise AtomError(f"cannot parse bit literal: {text!r}")


def _int_is_nil(value) -> bool:
    try:
        return int(value) == INT_NIL
    except (TypeError, ValueError):
        return value is None


def _oid_is_nil(value) -> bool:
    try:
        return int(value) == OID_NIL
    except (TypeError, ValueError):
        return value is None


def _dbl_is_nil(value) -> bool:
    if value is None:
        return True
    try:
        return math.isnan(float(value))
    except (TypeError, ValueError):
        return False


def _str_is_nil(value) -> bool:
    return value is None


def _bit_is_nil(value) -> bool:
    return value is None or (isinstance(value, (int, np.integer)) and int(value) == -1)


_REGISTRY: Dict[str, AtomType] = {}


def register_atom(atom_type: AtomType) -> AtomType:
    """Register a new atom type (Monet's atom extensibility hook).

    Raises :class:`AtomError` if the name is already taken by a
    *different* definition; re-registering the identical definition is a
    no-op so that modules can be imported repeatedly.
    """
    existing = _REGISTRY.get(atom_type.name)
    if existing is not None and existing is not atom_type:
        raise AtomError(f"atom type {atom_type.name!r} already registered")
    _REGISTRY[atom_type.name] = atom_type
    return atom_type


def atom(name: str) -> AtomType:
    """Look up a registered atom type by MIL name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise AtomError(
            f"unknown atom type {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def atom_names() -> list[str]:
    """Names of all registered atoms, sorted."""
    return sorted(_REGISTRY)


OID = register_atom(
    AtomType("oid", np.dtype(np.int64), OID_NIL, _parse_int, _oid_is_nil)
)
INT = register_atom(
    AtomType("int", np.dtype(np.int64), INT_NIL, _parse_int, _int_is_nil)
)
DBL = register_atom(
    AtomType("dbl", np.dtype(np.float64), float("nan"), _parse_dbl, _dbl_is_nil)
)
STR = register_atom(AtomType("str", np.dtype(object), None, _parse_str, _str_is_nil))
BIT = register_atom(AtomType("bit", np.dtype(np.int8), -1, _parse_bit, _bit_is_nil))

#: Mapping from Python scalar types to their natural atom.
_PYTHON_TO_ATOM = {
    bool: BIT,
    int: INT,
    float: DBL,
    str: STR,
}


def infer_atom(value: Any) -> AtomType:
    """Infer the atom type of a Python scalar (bool checked before int)."""
    if value is None:
        raise AtomError("cannot infer atom type of NIL")
    if isinstance(value, (bool, np.bool_)):
        return BIT
    if isinstance(value, (int, np.integer)):
        return INT
    if isinstance(value, (float, np.floating)):
        return DBL
    if isinstance(value, str):
        return STR
    raise AtomError(f"no atom type for Python value of type {type(value).__name__}")


def coerce_value(value: Any, atom_type: AtomType) -> Any:
    """Coerce a Python value into the in-column representation of an atom.

    ``None`` maps to the atom NIL sentinel.  Numeric widening (int ->
    dbl) is allowed; anything lossy raises :class:`AtomError`.
    """
    if value is None:
        return atom_type.nil
    name = atom_type.name
    if name in ("int", "oid"):
        if isinstance(value, (bool, np.bool_)):
            return int(value)
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, (float, np.floating)) and float(value).is_integer():
            return int(value)
        raise AtomError(f"cannot coerce {value!r} to {name}")
    if name == "dbl":
        if isinstance(value, (bool, np.bool_)):
            return float(value)
        if isinstance(value, (int, float, np.integer, np.floating)):
            return float(value)
        raise AtomError(f"cannot coerce {value!r} to dbl")
    if name == "str":
        if isinstance(value, str):
            return value
        raise AtomError(f"cannot coerce {value!r} to str")
    if name == "bit":
        if isinstance(value, (bool, np.bool_, int, np.integer)):
            return int(bool(value))
        raise AtomError(f"cannot coerce {value!r} to bit")
    return value


def is_nil(value: Any, atom_type: Optional[AtomType] = None) -> bool:
    """True when *value* is the NIL of its atom (or of *atom_type*)."""
    if value is None:
        return True
    if atom_type is not None:
        return atom_type.is_nil_fn(value)
    if isinstance(value, (float, np.floating)):
        return math.isnan(float(value))
    if isinstance(value, (int, np.integer)):
        return int(value) in (INT_NIL, OID_NIL)
    return False


class OidGenerator:
    """Global monotone oid sequence (Monet's ``newoid``/``oid`` seed).

    Each :class:`repro.monet.bbp.BATBufferPool` owns one generator so
    that separately constructed databases do not share oid spaces.
    """

    def __init__(self, start: int = 0):
        if start < 0:
            raise AtomError("oid sequence cannot start below zero")
        self._next = start

    @property
    def current(self) -> int:
        """The next oid that :meth:`allocate` would hand out."""
        return self._next

    def allocate(self, count: int = 1) -> int:
        """Reserve *count* consecutive oids, returning the first one."""
        if count < 0:
            raise AtomError("cannot allocate a negative number of oids")
        first = self._next
        self._next += count
        return first

    def bump_past(self, oid_value: int) -> None:
        """Ensure future allocations are strictly greater than *oid_value*
        (used when loading persisted BATs back into a pool)."""
        if oid_value >= self._next:
            self._next = oid_value + 1
