"""Monet substitute: a binary-relational (BAT) main-memory kernel.

This package reimplements, in Python on top of numpy, the parts of the
Monet extensible database system that the Mirror DBMS relies on:

* :mod:`repro.monet.atoms` -- the physical *atom* (base type) system that
  the Moa logical layer inherits (``oid``, ``int``, ``dbl``, ``str``,
  ``bit``) including NIL semantics.
* :mod:`repro.monet.bat` -- the Binary Association Table, Monet's only
  collection type: a sequence of (head, tail) pairs with column
  properties (dense/void heads, sortedness, key-ness).
* :mod:`repro.monet.kernel` -- the set-at-a-time operator kernel
  (selections, the join family, mark/reverse/mirror reconstruction,
  set operations).
* :mod:`repro.monet.aggregates` / :mod:`repro.monet.groups` -- grouping
  and "pump" (grouped) aggregation.
* :mod:`repro.monet.multiplex` -- the ``[op]`` multiplexed scalar
  operators that lift atom operations to whole BATs.
* :mod:`repro.monet.bbp` -- the BAT buffer pool: a named catalog of
  persistent BATs.
* :mod:`repro.monet.mil` -- a MIL-like plan language (lexer, parser,
  interpreter); the Moa compiler emits MIL text which this interpreter
  executes against a BBP.

fragments
---------

:mod:`repro.monet.fragments` adds horizontal fragmentation on top of
the kernel: a :class:`~repro.monet.fragments.FragmentedBAT` holds one
logical BAT as an ordered list of horizontal fragments (range or
round-robin split, controlled by a
:class:`~repro.monet.fragments.FragmentationPolicy`), and the hot
operators (``select``/``uselect``/``likeselect``, ``fetchjoin``,
``join``, ``semijoin``/``antijoin``, ``mark``, the scalar and grouped
aggregates) fan out over fragments on a shared thread pool -- numpy
releases the GIL on its bulk paths -- and recombine in BUN order with
conservatively maintained property flags.  The buffer pool registers
and persists fragmented BATs natively (``register_fragmented`` /
``lookup_fragments``), while plain ``lookup`` stays transparent by
coalescing lazily; the Moa mapping layer fragments large attributes
automatically past a configurable threshold
(:func:`repro.moa.mapping.set_fragment_threshold`).

The public surface mirrors Monet's vocabulary so that the flattening
rules of [BWK98] translate almost verbatim.
"""

from repro.monet.atoms import NIL, AtomType, atom, coerce_value, is_nil
from repro.monet.bat import BAT, Column, VoidColumn, bat_from_pairs, empty_bat
from repro.monet.bbp import BATBufferPool
from repro.monet.fragments import (
    FragmentationPolicy,
    FragmentedBAT,
    fragment_bat,
)
from repro.monet.errors import (
    AtomError,
    BATError,
    BBPError,
    KernelError,
    MILError,
    MonetError,
)

__all__ = [
    "AtomType",
    "atom",
    "coerce_value",
    "is_nil",
    "NIL",
    "BAT",
    "Column",
    "VoidColumn",
    "bat_from_pairs",
    "empty_bat",
    "BATBufferPool",
    "FragmentationPolicy",
    "FragmentedBAT",
    "fragment_bat",
    "MonetError",
    "AtomError",
    "BATError",
    "KernelError",
    "BBPError",
    "MILError",
]
