"""The Binary Association Table (BAT), Monet's only collection type.

A BAT is a sequence of *BUNs* (binary units): (head, tail) value pairs.
Both head and tail are typed by an atom.  All bulk data in the Mirror
DBMS bottoms out in BATs; the Moa layer maps every logical structure to
a set of named BATs (see :mod:`repro.moa.mapping`).

Columns
-------

:class:`Column` wraps a numpy array plus its atom type.  The special
:class:`VoidColumn` represents Monet's ``void`` type: a *virtual*
dense oid sequence ``seqbase, seqbase+1, ...`` that occupies no memory.
Most BATs produced by the kernel have void heads, which is what makes
positional joins (``fetchjoin``) constant-time per element.

Properties
----------

BATs carry the property flags Monet uses for optimization:

``hsorted``/``tsorted``
    head/tail values are non-decreasing.
``hkey``/``tkey``
    head/tail values are unique.
``hdense``
    head is a dense (void-representable) sequence.

The kernel maintains these conservatively: a flag is only ``True`` when
guaranteed by construction.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.monet.atoms import AtomType, atom, coerce_value
from repro.monet.errors import BATError, InvalidMutationBatch, InvalidPositions


class Column:
    """A materialized column: numpy array + atom type."""

    __slots__ = ("atom_type", "values")

    def __init__(self, atom_type: Union[AtomType, str], values: np.ndarray):
        if isinstance(atom_type, str):
            atom_type = atom(atom_type)
        if not isinstance(values, np.ndarray):
            values = atom_type.make_array(list(values))
        if values.ndim != 1:
            raise BATError("column values must be one-dimensional")
        self.atom_type = atom_type
        self.values = values

    def __len__(self) -> int:
        return len(self.values)

    @property
    def is_void(self) -> bool:
        return False

    def materialize(self) -> np.ndarray:
        """Return the underlying numpy array (already materialized)."""
        return self.values

    def take(self, positions: np.ndarray) -> "Column":
        """Positional gather."""
        return Column(self.atom_type, self.values[positions])

    def python_value(self, position: int):
        """The Python-level value at *position* (NIL -> None)."""
        return self.atom_type.to_python(self.values[position])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column<{self.atom_type.name}>[{len(self)}]"


class VoidColumn:
    """A virtual dense oid column ``seqbase .. seqbase+count-1``.

    This is Monet's ``void`` head: it stores nothing, yet behaves like a
    sorted, key oid column.  :meth:`materialize` produces the explicit
    array when an operator needs real values.
    """

    __slots__ = ("seqbase", "count", "atom_type")

    def __init__(self, seqbase: int, count: int):
        if seqbase < 0 or count < 0:
            raise BATError("void column needs non-negative seqbase and count")
        self.seqbase = seqbase
        self.count = count
        self.atom_type = atom("oid")

    def __len__(self) -> int:
        return self.count

    @property
    def is_void(self) -> bool:
        return True

    def materialize(self) -> np.ndarray:
        return np.arange(self.seqbase, self.seqbase + self.count, dtype=np.int64)

    def take(self, positions: np.ndarray) -> Column:
        return Column(self.atom_type, np.asarray(positions, dtype=np.int64) + self.seqbase)

    def python_value(self, position: int) -> int:
        if position < 0:
            position += self.count
        if not 0 <= position < self.count:
            raise BATError("void column index out of range")
        return self.seqbase + position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VoidColumn[{self.seqbase}..{self.seqbase + self.count})"


AnyColumn = Union[Column, VoidColumn]


class BAT:
    """A Binary Association Table: aligned head and tail columns.

    BATs are *immutable* (by convention and by the write path's
    contract): kernel operators always build new BATs (or views), and
    the update layer's entry point :meth:`append` is copy-on-write --
    it returns a *new* BAT sharing nothing mutable with the receiver,
    so any snapshot holding the old object keeps reading the old BUNs.
    """

    __slots__ = ("head", "tail", "hsorted", "tsorted", "hkey", "tkey", "name")

    def __init__(
        self,
        head: AnyColumn,
        tail: AnyColumn,
        *,
        hsorted: bool = False,
        tsorted: bool = False,
        hkey: bool = False,
        tkey: bool = False,
        name: Optional[str] = None,
    ):
        if len(head) != len(tail):
            raise BATError(
                f"head/tail length mismatch: {len(head)} vs {len(tail)}"
            )
        self.head = head
        self.tail = tail
        # Void columns are dense, therefore sorted and key by definition.
        self.hsorted = hsorted or head.is_void
        self.hkey = hkey or head.is_void
        self.tsorted = tsorted or tail.is_void
        self.tkey = tkey or tail.is_void
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.head)

    @property
    def count(self) -> int:
        """BUN count (Monet's ``count``)."""
        return len(self.head)

    @property
    def htype(self) -> str:
        return self.head.atom_type.name

    @property
    def ttype(self) -> str:
        return self.tail.atom_type.name

    @property
    def hdense(self) -> bool:
        """True when the head is a virtual dense sequence."""
        return self.head.is_void

    def head_values(self) -> np.ndarray:
        """Materialized head array."""
        return self.head.materialize()

    def tail_values(self) -> np.ndarray:
        """Materialized tail array."""
        return self.tail.materialize()

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate (head, tail) pairs as Python values (NIL -> None)."""
        for position in range(len(self)):
            yield (
                self.head.python_value(position),
                self.tail.python_value(position),
            )

    def to_pairs(self) -> List[Tuple[Any, Any]]:
        """All BUNs as a Python list (test/debug helper)."""
        return list(self.items())

    def to_dict(self) -> dict:
        """head -> tail mapping; requires a key head."""
        if not self.hkey:
            raise BATError("to_dict requires a key head column")
        return dict(self.items())

    def tail_list(self) -> List[Any]:
        """Tail values in BUN order as Python values (vectorized)."""
        return _column_to_list(self.tail)

    def head_list(self) -> List[Any]:
        """Head values in BUN order as Python values (vectorized)."""
        return _column_to_list(self.head)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or "tmp"
        return f"BAT({label})[{self.htype},{self.ttype}]#{len(self)}"

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def reverse(self) -> "BAT":
        """Swap head and tail (Monet ``reverse``); O(1) view semantics."""
        return BAT(
            self.tail,
            self.head,
            hsorted=self.tsorted,
            tsorted=self.hsorted,
            hkey=self.tkey,
            tkey=self.hkey,
        )

    def mirror(self) -> "BAT":
        """[head, head] view (Monet ``mirror``)."""
        return BAT(
            self.head,
            self.head,
            hsorted=self.hsorted,
            tsorted=self.hsorted,
            hkey=self.hkey,
            tkey=self.hkey,
        )

    def slice(self, start: int, stop: int) -> "BAT":
        """BUN-positional slice [start, stop) (Monet ``slice``)."""
        start = max(0, start)
        stop = min(len(self), stop)
        if stop < start:
            stop = start
        positions = np.arange(start, stop, dtype=np.int64)
        return self.take_positions(positions)

    def take_positions(self, positions: np.ndarray) -> "BAT":
        """Gather BUNs at the given positions, preserving order-derived
        properties only when the gather is monotone."""
        positions = np.asarray(positions, dtype=np.int64)
        monotone = len(positions) <= 1 or bool(np.all(np.diff(positions) > 0))
        if self.head.is_void and monotone and len(positions) > 0:
            contiguous = bool(np.all(np.diff(positions) == 1)) if len(positions) > 1 else True
            if contiguous:
                head: AnyColumn = VoidColumn(
                    self.head.seqbase + int(positions[0]), len(positions)
                )
            else:
                head = self.head.take(positions)
        else:
            head = self.head.take(positions)
        tail = self.tail.take(positions)
        return BAT(
            head,
            tail,
            hsorted=self.hsorted and monotone,
            tsorted=self.tsorted and monotone,
            hkey=self.hkey,
            tkey=self.tkey,
        )

    # ------------------------------------------------------------------
    # Point access
    # ------------------------------------------------------------------
    def find(self, head_value) -> Any:
        """Tail value for the first BUN whose head equals *head_value*
        (Monet ``find``); raises :class:`BATError` when absent."""
        if self.head.is_void:
            position = int(head_value) - self.head.seqbase
            if 0 <= position < len(self):
                return self.tail.python_value(position)
            raise BATError(f"head value {head_value!r} not found")
        heads = self.head.materialize()
        if self.head.atom_type.name == "str":
            matches = np.nonzero(heads == head_value)[0]
        else:
            matches = np.nonzero(heads == coerce_value(head_value, self.head.atom_type))[0]
        if len(matches) == 0:
            raise BATError(f"head value {head_value!r} not found")
        return self.tail.python_value(int(matches[0]))

    def exists(self, head_value) -> bool:
        """True when some BUN has this head value (Monet ``exist``)."""
        try:
            self.find(head_value)
            return True
        except BATError:
            return False

    # ------------------------------------------------------------------
    # Copy-on-write append (the update layer's entry point)
    # ------------------------------------------------------------------
    def append(
        self,
        pairs: Optional[Sequence[Tuple[Any, Any]]] = None,
        *,
        tails: Optional[Sequence[Any]] = None,
    ) -> "BAT":
        """A new BAT with the given BUNs appended after this one's.

        Copy-on-write: the receiver is untouched, so snapshot readers
        holding it never see the new BUNs.  Two calling conventions:

        * ``append(pairs)`` -- explicit (head, tail) Python pairs;
        * ``append(tails=values)`` -- tail values only, the head must be
          void and is extended densely (the shape of every Moa
          attribute BAT).

        Property flags are maintained conservatively from the appended
        run and the boundary BUN alone (O(appended), never O(total)):
        sortedness survives when the appended values are sorted and the
        boundary is non-decreasing; keyness survives only when global
        uniqueness is implied by sortedness (both runs sorted, strictly
        increasing appended run, strictly increasing boundary).
        """
        if (pairs is None) == (tails is None):
            raise BATError("append takes pairs or tails=, not both/neither")
        if tails is not None:
            if not self.head.is_void:
                raise BATError(
                    "append(tails=...) needs a void head; pass explicit pairs"
                )
            new_tail = column_from_values(self.ttype, list(tails))
            if len(new_tail) == 0:
                return self
            head: AnyColumn = VoidColumn(
                self.head.seqbase, len(self) + len(new_tail)
            )
            tail, tsorted, tkey = self._extend_column(
                self.tail, new_tail, self.tsorted, self.tkey
            )
            return BAT(
                head,
                tail,
                hsorted=True,
                hkey=True,
                tsorted=tsorted,
                tkey=tkey,
                name=self.name,
            )
        pair_list = list(pairs)
        if not pair_list:
            return self
        new_head = column_from_values(self.htype, [h for h, _ in pair_list])
        new_tail = column_from_values(self.ttype, [t for _, t in pair_list])
        if self.head.is_void and _continues_dense(
            self.head.seqbase + len(self), new_head.values
        ):
            head = VoidColumn(self.head.seqbase, len(self) + len(new_head))
            hsorted, hkey = True, True
        else:
            head, hsorted, hkey = self._extend_column(
                self.head, new_head, self.hsorted, self.hkey
            )
        tail, tsorted, tkey = self._extend_column(
            self.tail, new_tail, self.tsorted, self.tkey
        )
        return BAT(
            head,
            tail,
            hsorted=hsorted,
            hkey=hkey,
            tsorted=tsorted,
            tkey=tkey,
            name=self.name,
        )

    def _extend_column(
        self, old: AnyColumn, new: Column, was_sorted: bool, was_key: bool
    ) -> Tuple[Column, bool, bool]:
        """Concatenate *new* after *old*; returns (column, sorted, key)
        flags derived from the appended run and the boundary only."""
        atom_name = new.atom_type.name
        old_values = old.materialize()
        values = np.concatenate([old_values, new.values])
        run_sorted = _is_sorted(new.values, atom_name)
        run_strict = run_sorted and _is_strictly_increasing(new.values, atom_name)
        if len(old_values):
            boundary = _boundary_order(
                old_values[-1], new.values[0], atom_name
            )
        else:
            boundary = 2  # empty prefix: boundary is vacuously strict
        now_sorted = was_sorted and run_sorted and boundary >= 1
        # Uniqueness from sortedness: both runs sorted, the appended run
        # strictly increasing and the boundary strict imply every new
        # value exceeds every old one.
        now_key = was_key and now_sorted and run_strict and boundary == 2
        return Column(new.atom_type, values), now_sorted, now_key

    # ------------------------------------------------------------------
    # Copy-on-write delete / update (the tombstone + patch primitives)
    # ------------------------------------------------------------------
    def delete_positions(
        self,
        positions: Union[np.ndarray, Sequence[int]],
        *,
        renumber_dense_tail: bool = False,
    ) -> "BAT":
        """A new BAT with the BUNs at *positions* removed.

        Copy-on-write like :meth:`append`: the receiver is untouched, so
        snapshot readers keep seeing the deleted BUNs.  Positions are
        0-based BUN positions, normalized to a sorted unique array;
        out-of-range positions raise :class:`InvalidPositions`.

        Survivors keep their order, so the gather is monotone and all
        four property flags carry over unchanged (O(deleted) flag
        maintenance, never a rescan).  A void head is *re-densified* --
        survivors renumber to ``seqbase .. seqbase+m-1`` -- which is what
        keeps Moa's positional-fetchjoin discipline alive across deletes.

        ``renumber_dense_tail=True`` additionally rewrites a tail that is
        provably a dense integer run (sorted + key + span == count-1:
        the shape of a Moa extent's oid tail) to the dense run of the new
        length; any other tail raises :class:`InvalidMutationBatch`.
        """
        positions = _normalize_positions(positions, len(self))
        if len(positions) == 0:
            return self
        mask = np.ones(len(self), dtype=bool)
        mask[positions] = False
        keep = np.nonzero(mask)[0]
        if self.head.is_void:
            head: AnyColumn = VoidColumn(self.head.seqbase, len(keep))
        else:
            head = self.head.take(keep)
        if renumber_dense_tail:
            tail: AnyColumn = self._dense_tail_renumbered(len(keep))
            tsorted, tkey = True, True
        else:
            tail = self.tail.take(keep)
            tsorted, tkey = self.tsorted, self.tkey
        return BAT(
            head,
            tail,
            hsorted=self.hsorted,
            hkey=self.hkey,
            tsorted=tsorted,
            tkey=tkey,
            name=self.name,
        )

    def update_positions(
        self,
        positions: Union[np.ndarray, Sequence[int]],
        values: Sequence[Any],
    ) -> "BAT":
        """A new BAT with the tail values at *positions* replaced by
        *values* (position-aligned; duplicate positions: last wins).

        Copy-on-write: the receiver is untouched.  The head column is
        shared by reference, so ``hsorted``/``hkey`` survive untouched.
        Tail flags are maintained in O(changed): ``tsorted`` survives only
        when every adjacent pair touching a patched position is still
        non-decreasing (a patch to NIL fails the pair check, clearing the
        flag -- NIL is incomparable); ``tkey`` is conservatively cleared,
        since local inspection cannot re-prove global uniqueness.
        """
        positions = _normalize_positions(positions, len(self), unique=False)
        value_list = list(values)
        if len(value_list) != len(positions):
            raise InvalidMutationBatch(
                f"update needs one value per position: "
                f"{len(value_list)} values for {len(positions)} positions"
            )
        if len(positions) == 0:
            return self
        patch = column_from_values(self.ttype, value_list)
        if self.tail.is_void:
            base_values = self.tail.materialize()
            tail_type = patch.atom_type
        else:
            base_values = self.tail.values
            tail_type = self.tail.atom_type
        new_values = base_values.copy()
        new_values[positions] = patch.values
        tsorted = self.tsorted and _pairs_sorted(
            new_values, positions, tail_type.name
        )
        return BAT(
            self.head,
            Column(tail_type, new_values),
            hsorted=self.hsorted,
            hkey=self.hkey,
            tsorted=tsorted,
            tkey=False,
            name=self.name,
        )

    def _dense_tail_renumbered(self, new_count: int) -> Column:
        """The dense integer run of length *new_count* continuing this
        BAT's provably-dense tail (extent-oid shape); raises
        :class:`InvalidMutationBatch` when density cannot be proven O(1)
        from the flags."""
        tail = self.tail
        if tail.is_void:
            return Column(
                atom("oid"),
                np.arange(
                    tail.seqbase, tail.seqbase + new_count, dtype=np.int64
                ),
            )
        values = tail.values
        dense = (
            self.tsorted
            and self.tkey
            and tail.atom_type.name in ("int", "oid")
            and (
                len(values) == 0
                or int(values[-1]) - int(values[0]) == len(values) - 1
            )
        )
        if not dense:
            raise InvalidMutationBatch(
                "renumber_dense_tail requires a provably dense integer "
                "tail (sorted, key, span == count-1)"
            )
        seqbase = int(values[0]) if len(values) else 0
        dtype = values.dtype if len(values) else np.int64
        return Column(
            tail.atom_type,
            np.arange(seqbase, seqbase + new_count, dtype=dtype),
        )


def _normalize_positions(
    positions: Union[np.ndarray, Sequence[int]],
    count: int,
    *,
    unique: bool = True,
) -> np.ndarray:
    """Validate and normalize BUN positions: int64, one-dimensional, in
    range; sorted-unique unless *unique* is False (updates keep caller
    order so duplicate positions resolve last-wins)."""
    try:
        if isinstance(positions, np.ndarray):
            arr = positions.astype(np.int64, copy=False)
        else:
            arr = np.asarray(list(positions), dtype=np.int64)
    except (TypeError, ValueError):
        raise InvalidPositions("positions must be integers") from None
    if arr.ndim != 1:
        raise InvalidPositions("positions must be one-dimensional")
    if len(arr) == 0:
        return arr
    lo, hi = int(arr.min()), int(arr.max())
    if lo < 0 or hi >= count:
        raise InvalidPositions(
            f"position out of range for {count} BUNs: saw [{lo}, {hi}]"
        )
    return np.unique(arr) if unique else arr


def _pairs_sorted(
    values: np.ndarray, touched: np.ndarray, atom_name: str
) -> bool:
    """Adjacent-pair sortedness restricted to pairs touching *touched*
    positions -- the O(changed) core of update flag maintenance.  NIL in
    a checked pair fails the check (NIL is incomparable)."""
    n = len(values)
    if n <= 1:
        return True
    starts = np.unique(np.concatenate([touched - 1, touched]))
    starts = starts[(starts >= 0) & (starts < n - 1)]
    if len(starts) == 0:
        return True
    left = values[starts]
    right = values[starts + 1]
    if atom_name == "str":
        for a, b in zip(list(left), list(right)):
            if a is None or b is None or a > b:
                return False
        return True
    try:
        return bool(np.all(left <= right))
    except TypeError:
        return False


def column_from_values(atom_name: str, values: Sequence[Any]) -> Column:
    """Build a materialized column of atom *atom_name* from Python values."""
    atom_type = atom(atom_name)
    coerced = [coerce_value(v, atom_type) for v in values]
    return Column(atom_type, atom_type.make_array(coerced))


def bat_from_pairs(
    head_type: str,
    tail_type: str,
    pairs: Iterable[Tuple[Any, Any]],
    *,
    name: Optional[str] = None,
) -> BAT:
    """Construct a BAT from (head, tail) Python pairs.

    Detects a dense head automatically so that round-trips through
    :meth:`BAT.to_pairs` preserve void-ness.
    """
    pair_list = list(pairs)
    heads = [h for h, _ in pair_list]
    tails = [t for _, t in pair_list]
    tail_col = column_from_values(tail_type, tails)
    if head_type == "oid" and _is_dense(heads):
        seqbase = int(heads[0]) if heads else 0
        return BAT(VoidColumn(seqbase, len(heads)), tail_col, name=name)
    head_col = column_from_values(head_type, heads)
    hsorted = _is_sorted(head_col.values, head_type)
    hkey = hsorted and _is_strictly_increasing(head_col.values, head_type)
    return BAT(head_col, tail_col, hsorted=hsorted, hkey=hkey, name=name)


def dense_bat(tail_type: str, values: Sequence[Any], *, seqbase: int = 0) -> BAT:
    """[void, tail] BAT over *values* with a dense head starting at
    *seqbase* -- the workhorse constructor for loading columns."""
    tail_col = column_from_values(tail_type, values)
    return BAT(VoidColumn(seqbase, len(tail_col)), tail_col)


def empty_bat(head_type: str, tail_type: str) -> BAT:
    """A zero-BUN BAT of the given column types."""
    if head_type == "oid":
        head: AnyColumn = VoidColumn(0, 0)
    else:
        head = column_from_values(head_type, [])
    return BAT(head, column_from_values(tail_type, []), hsorted=True, tsorted=True,
               hkey=True, tkey=True)


def _column_to_list(column: AnyColumn) -> List[Any]:
    """Bulk column -> Python list with NIL -> None, avoiding the
    per-element ``python_value`` dispatch (hot path of result
    reconstruction)."""
    if column.is_void:
        return list(range(column.seqbase, column.seqbase + column.count))
    atom_type = column.atom_type
    values = column.values
    name = atom_type.name
    if name == "str":
        return list(values)
    if name == "dbl":
        mask = np.isnan(values)
        plain = values.tolist()
        if not mask.any():
            return plain
        return [None if m else v for v, m in zip(plain, mask.tolist())]
    if name in ("int", "oid"):
        nil = atom_type.nil
        plain = values.tolist()
        if not (values == nil).any():
            return plain
        return [None if v == nil else v for v in plain]
    if name == "bit":
        return [None if v == -1 else bool(v) for v in values.tolist()]
    return [atom_type.to_python(v) for v in values]


def _continues_dense(expected_next: int, heads: np.ndarray) -> bool:
    """True when *heads* is exactly the dense run starting at
    *expected_next* (so a void head can stay void after an append)."""
    if len(heads) == 0:
        return True
    if heads.dtype == np.dtype(object):
        return False
    expected = np.arange(
        expected_next, expected_next + len(heads), dtype=np.int64
    )
    try:
        return bool(np.array_equal(heads.astype(np.int64), expected))
    except (TypeError, ValueError):
        return False


def _boundary_order(last_old: Any, first_new: Any, atom_name: str) -> int:
    """Order of the boundary BUN pair: 2 strict increase, 1 equal,
    0 anything else (decrease, NIL, incomparable)."""
    if atom_name == "str":
        if last_old is None or first_new is None:
            return 0
        if last_old < first_new:
            return 2
        return 1 if last_old == first_new else 0
    try:
        if bool(last_old < first_new):
            return 2
        return 1 if bool(last_old == first_new) else 0
    except TypeError:
        return 0


def _is_dense(values: Sequence[Any]) -> bool:
    if not values:
        return True
    try:
        ints = [int(v) for v in values]
    except (TypeError, ValueError):
        return False
    return all(b - a == 1 for a, b in zip(ints, ints[1:]))


def _is_sorted(arr: np.ndarray, atom_name: str) -> bool:
    if len(arr) <= 1:
        return True
    if atom_name == "str":
        vals = list(arr)
        if any(v is None for v in vals):
            return False
        return all(a <= b for a, b in zip(vals, vals[1:]))
    return bool(np.all(arr[:-1] <= arr[1:]))


def _is_strictly_increasing(arr: np.ndarray, atom_name: str) -> bool:
    if len(arr) <= 1:
        return True
    if atom_name == "str":
        vals = list(arr)
        if any(v is None for v in vals):
            return False
        return all(a < b for a, b in zip(vals, vals[1:]))
    return bool(np.all(arr[:-1] < arr[1:]))
