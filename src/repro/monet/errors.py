"""Exception hierarchy for the Monet substitute.

Every error raised by the physical layer derives from :class:`MonetError`
so that callers (the Moa executor, the Mirror facade) can catch physical
failures without masking programming errors.
"""


class MonetError(Exception):
    """Base class for all errors raised by the Monet substitute."""


class AtomError(MonetError):
    """Invalid atom type name, value coercion failure, or NIL misuse."""


class BATError(MonetError):
    """Structural BAT violation: mismatched column lengths, bad access."""


class KernelError(MonetError):
    """Operator-level failure: type mismatch between operands, bad args."""


class BBPError(MonetError):
    """BAT buffer pool failure: unknown name, duplicate registration,
    persistence I/O problems."""


class MutationError(MonetError):
    """Base of the unified mutation-API error vocabulary.

    Every failure on the write path -- ``insert``/``update``/``delete``
    through :class:`~repro.core.mirror.Transaction`, the pool-level
    ``append``/``delete``/``update``, and the wire mutation ops -- raises
    a :class:`MutationError` subclass, replacing the historical mix of
    ``ValueError``/``BBPError``/``KernelError``/``MILRuntimeError``.
    Subclasses multiple-inherit from the legacy classes they replace so
    existing ``except`` clauses keep working.
    """


class UnknownMutationTarget(MutationError, BBPError):
    """Mutation names a BAT or collection the catalog does not know."""


class InvalidMutationBatch(MutationError, KernelError):
    """Malformed payload: bad pairs/tails shape, wrong arity, values
    that do not coerce to the target atom type."""


class InvalidPositions(MutationError, KernelError):
    """Delete/update positions are out of range, unsorted after
    normalization, or misaligned with the supplied values."""


class TransactionError(MutationError):
    """Transaction protocol violation: commit/abort on a closed
    transaction, nested ``begin`` on a session, mutating through an
    aborted handle."""


class MILError(MonetError):
    """MIL front-end failure: lexing, parsing, or runtime evaluation."""


class MILSyntaxError(MILError):
    """Raised by the MIL lexer/parser with position information."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class MILRuntimeError(MILError):
    """Raised by the MIL interpreter while evaluating a program."""


class MILCancelled(MILRuntimeError):
    """Raised by a cancellation/deadline checkpoint to stop a running
    plan between statements (see :meth:`MILInterpreter.run_program`).
    The service layer maps this onto its ``timeout``/``cancelled`` wire
    errors; ``reason`` distinguishes the two."""

    def __init__(self, message: str, reason: str = "cancelled"):
        super().__init__(message)
        self.reason = reason
