"""Exception hierarchy for the Monet substitute.

Every error raised by the physical layer derives from :class:`MonetError`
so that callers (the Moa executor, the Mirror facade) can catch physical
failures without masking programming errors.
"""


class MonetError(Exception):
    """Base class for all errors raised by the Monet substitute."""


class AtomError(MonetError):
    """Invalid atom type name, value coercion failure, or NIL misuse."""


class BATError(MonetError):
    """Structural BAT violation: mismatched column lengths, bad access."""


class KernelError(MonetError):
    """Operator-level failure: type mismatch between operands, bad args."""


class BBPError(MonetError):
    """BAT buffer pool failure: unknown name, duplicate registration,
    persistence I/O problems."""


class MILError(MonetError):
    """MIL front-end failure: lexing, parsing, or runtime evaluation."""


class MILSyntaxError(MILError):
    """Raised by the MIL lexer/parser with position information."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class MILRuntimeError(MILError):
    """Raised by the MIL interpreter while evaluating a program."""


class MILCancelled(MILRuntimeError):
    """Raised by a cancellation/deadline checkpoint to stop a running
    plan between statements (see :meth:`MILInterpreter.run_program`).
    The service layer maps this onto its ``timeout``/``cancelled`` wire
    errors; ``reason`` distinguishes the two."""

    def __init__(self, message: str, reason: str = "cancelled"):
        super().__init__(message)
        self.reason = reason
