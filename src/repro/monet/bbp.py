"""The BAT Buffer Pool (BBP): Monet's catalog of named persistent BATs.

Every persistent BAT in a Monet database is registered in the BBP under
a logical name; MIL programs refer to persistent BATs with ``bat("name")``.
The Moa mapping layer stores each logical attribute under a dotted name
such as ``ImageLibrary.annotation.tf`` (see :mod:`repro.moa.mapping`).

Persistence is a directory with one ``.npz`` per BAT plus a JSON
catalog.  It deliberately mirrors Monet's "BBP dir + heap files" layout
at a coarse granularity: enough to round-trip a whole Mirror database
(tested in ``tests/monet/test_bbp.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from repro.monet.atoms import OidGenerator, atom
from repro.monet.bat import BAT, Column, VoidColumn
from repro.monet.errors import BBPError


class BATBufferPool:
    """Mutable registry name -> BAT with save/load and an oid sequence."""

    def __init__(self):
        self._bats: Dict[str, BAT] = {}
        self.oid_generator = OidGenerator()

    # ------------------------------------------------------------------
    # Catalog operations
    # ------------------------------------------------------------------
    def register(self, name: str, bat: BAT, *, replace: bool = False) -> BAT:
        """Register *bat* under *name* (Monet ``persists``)."""
        if not name:
            raise BBPError("BAT name must be non-empty")
        if name in self._bats and not replace:
            raise BBPError(f"BAT {name!r} already registered")
        bat.name = name
        self._bats[name] = bat
        self._bump_oids(bat)
        return bat

    def lookup(self, name: str) -> BAT:
        """The BAT registered under *name* (MIL ``bat("name")``)."""
        try:
            return self._bats[name]
        except KeyError:
            raise BBPError(f"no BAT named {name!r} in the pool") from None

    def exists(self, name: str) -> bool:
        return name in self._bats

    def drop(self, name: str) -> None:
        """Remove *name* from the catalog."""
        if name not in self._bats:
            raise BBPError(f"cannot drop unknown BAT {name!r}")
        del self._bats[name]

    def names(self, prefix: str = "") -> List[str]:
        """Registered names, optionally filtered by prefix, sorted."""
        return sorted(n for n in self._bats if n.startswith(prefix))

    def __contains__(self, name: str) -> bool:
        return name in self._bats

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._bats))

    def __len__(self) -> int:
        return len(self._bats)

    def new_oids(self, count: int) -> int:
        """Allocate *count* fresh oids; returns the first."""
        return self.oid_generator.allocate(count)

    def _bump_oids(self, bat: BAT) -> None:
        """Keep the oid sequence ahead of any oid stored in *bat*."""
        for column in (bat.head, bat.tail):
            if column.is_void:
                top = column.seqbase + len(column) - 1
                if len(column):
                    self.oid_generator.bump_past(top)
            elif column.atom_type.name == "oid" and len(column):
                values = column.materialize()
                finite = values[values != np.iinfo(np.int64).max]
                if len(finite):
                    self.oid_generator.bump_past(int(finite.max()))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Write the whole pool to *directory* (catalog + one npz/BAT)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        catalog = {"oid_next": self.oid_generator.current, "bats": {}}
        for index, (name, bat) in enumerate(sorted(self._bats.items())):
            filename = f"bat_{index:05d}.npz"
            entry = {
                "file": filename,
                "htype": bat.htype,
                "ttype": bat.ttype,
                "hsorted": bat.hsorted,
                "tsorted": bat.tsorted,
                "hkey": bat.hkey,
                "tkey": bat.tkey,
                "hvoid": bat.head.is_void,
                "tvoid": bat.tail.is_void,
            }
            arrays = {}
            if bat.head.is_void:
                entry["hseqbase"] = bat.head.seqbase
                entry["count"] = len(bat)
            else:
                arrays["head"] = _storable(bat.head_values())
            if bat.tail.is_void:
                entry["tseqbase"] = bat.tail.seqbase
                entry["count"] = len(bat)
            else:
                arrays["tail"] = _storable(bat.tail_values())
            np.savez(directory / filename, **arrays)
            catalog["bats"][name] = entry
        (directory / "catalog.json").write_text(json.dumps(catalog, indent=1))

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "BATBufferPool":
        """Read a pool previously written by :meth:`save`."""
        directory = Path(directory)
        catalog_path = directory / "catalog.json"
        if not catalog_path.exists():
            raise BBPError(f"no catalog.json under {directory}")
        catalog = json.loads(catalog_path.read_text())
        pool = cls()
        for name, entry in catalog["bats"].items():
            with np.load(directory / entry["file"], allow_pickle=True) as data:
                head = _restore_column(entry, data, "h", "head")
                tail = _restore_column(entry, data, "t", "tail")
            bat = BAT(
                head,
                tail,
                hsorted=entry["hsorted"],
                tsorted=entry["tsorted"],
                hkey=entry["hkey"],
                tkey=entry["tkey"],
                name=name,
            )
            pool._bats[name] = bat
        pool.oid_generator.bump_past(catalog.get("oid_next", 0) - 1)
        return pool


#: NIL marker for persisted string columns.  No trailing NUL: numpy
#: unicode arrays strip trailing NULs on read, so the marker must not
#: end in one.
_STR_NIL_MARKER = "\x00NIL"


def _storable(values: np.ndarray) -> np.ndarray:
    """Object (string) arrays are stored as unicode arrays; None becomes
    the reserved marker so NILs round-trip."""
    if values.dtype == np.dtype(object):
        return np.array(
            [_STR_NIL_MARKER if v is None else v for v in values], dtype=str
        )
    return values


def _restore_column(entry: dict, data, prefix: str, key: str):
    if entry[f"{prefix}void"]:
        return VoidColumn(entry[f"{prefix}seqbase"], entry["count"])
    atom_name = entry["htype"] if prefix == "h" else entry["ttype"]
    raw = data[key]
    if atom_name == "str":
        values = np.empty(len(raw), dtype=object)
        for position, item in enumerate(raw):
            text = str(item)
            values[position] = None if text == _STR_NIL_MARKER else text
        return Column("str", values)
    return Column(atom_name, raw.astype(atom(atom_name).dtype))
