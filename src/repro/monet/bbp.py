"""The BAT Buffer Pool (BBP): Monet's catalog of named persistent BATs.

Every persistent BAT in a Monet database is registered in the BBP under
a logical name; MIL programs refer to persistent BATs with ``bat("name")``.
The Moa mapping layer stores each logical attribute under a dotted name
such as ``ImageLibrary.annotation.tf`` (see :mod:`repro.moa.mapping`).

Large attributes may be registered *fragmented*
(:class:`repro.monet.fragments.FragmentedBAT`): the pool keeps the
fragments as the unit of storage and persistence, while :meth:`lookup`
stays transparent by lazily coalescing to a monolithic BAT (cached).
Fragment-aware callers use :meth:`lookup_fragments` to run the
fragment-parallel operators of :mod:`repro.monet.fragments`.

Persistence is a directory with one ``.npz`` per BAT (one per fragment
for fragmented BATs) plus a JSON catalog.  It deliberately mirrors
Monet's "BBP dir + heap files" layout at a coarse granularity: enough
to round-trip a whole Mirror database.  Calibrated fragment tuning
(:func:`repro.monet.fragments.set_default_tuning` values) rides along
in the catalog, so a reloaded database skips the measurement pass.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import re
import shutil
import tempfile
import threading
import time
import warnings
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

import numpy as np

from repro.monet.atoms import OidGenerator, atom
from repro.monet.bat import BAT, Column, VoidColumn
from repro.monet.errors import (
    BBPError,
    InvalidMutationBatch,
    KernelError,
    MonetError,
    UnknownMutationTarget,
)
from repro.monet import fragments as _fragments
from repro.monet.fragments import (
    FragmentationPolicy,
    FragmentedBAT,
    fragment_bat,
)


def _wal_group_window_ms() -> float:
    try:
        return max(0.0, float(os.environ.get("REPRO_WAL_GROUP_MS", "0") or 0))
    except ValueError:
        return 0.0


#: Group-commit window in milliseconds (``REPRO_WAL_GROUP_MS``).  The
#: WAL leader sleeps this long before draining the intent queue so
#: concurrent mutators can pile onto one fsync.  Zero (the default)
#: still batches: any mutator that arrives while a flush is in flight
#: joins the next batch instead of issuing its own fsync.  Module-level
#: and mutable so benchmarks and tests can steer it per run.
WAL_GROUP_MS: float = _wal_group_window_ms()


class BATBufferPool:
    """Mutable registry name -> BAT with save/load and an oid sequence.

    Names map to either a monolithic BAT or a fragmented one; the two
    sub-catalogs share one namespace.

    The pool is thread-safe: one re-entrant lock guards the two
    sub-catalogs, both view caches and the oid sequence, so concurrent
    sessions of the query service can register, drop and look up names
    against one shared pool.  Lookups hold the lock while a coalesced
    or split view materializes -- a concurrent re-register of the same
    name therefore either happens-before (the new view is built from
    the new registration) or happens-after (its invalidation evicts the
    view just cached); a stale view can never survive the
    invalidation.
    """

    def __init__(self):
        self._bats: Dict[str, BAT] = {}
        self._fragmented: Dict[str, FragmentedBAT] = {}
        # Per-name view caches, invalidated on (re-)register and drop:
        # coalesced monolithic views of fragmented registrations
        # (lookup) and on-the-fly fragmentations of monolithic
        # registrations (lookup_fragments).  Without these, every MIL
        # reference to the same name would re-materialize the view.
        self._coalesced_views: Dict[str, BAT] = {}
        self._fragment_views: Dict[str, FragmentedBAT] = {}
        self._lock = threading.RLock()
        self.oid_generator = OidGenerator()
        #: Monotone catalog version, bumped under the lock by every
        #: register/append/drop (and by merge-daemon swaps).  A
        #: :class:`PoolSnapshot` is stamped with the epoch it froze, so
        #: two snapshots at the same epoch hold the same logical
        #: catalog.
        self._epoch = 0
        # Write-ahead state: set once the pool is attached to a
        # directory (save/load); mutations then log their intent to
        # wal.jsonl before publishing, and load() replays it.
        self._directory: Optional[Path] = None
        self._wal_file = None
        self._generation = 0
        self._arm_mutation_state()
        # Background delta-merge daemon (started on demand).
        self._merge_stop: Optional[threading.Event] = None
        self._merge_thread: Optional[threading.Thread] = None
        _sweep_spill_once()

    def _arm_mutation_state(self) -> None:
        """(Re-)create the unpicklable mutation machinery: per-name
        mutator locks, the group-commit queue state, and the WAL file
        mutex.  Counters survive pickling; locks and queues do not."""
        # One mutex per name serializes mutators of that name while the
        # pool lock stays free for readers and other names' mutators --
        # which is what lets concurrent WAL intents overlap into one
        # group-commit fsync.  Ordering discipline: name lock -> pool
        # lock -> WAL file mutex; the condition variable is taken on its
        # own (never while holding the pool lock's critical section
        # except for the rare re-log path, which is pool -> io only).
        self._name_locks: Dict[str, threading.Lock] = {}
        # Group-commit state, all guarded by the condition's mutex:
        # encoded intent lines queue up, the first waiter becomes the
        # leader, drains the queue after the WAL_GROUP_MS window, and
        # one fsync covers the whole batch.
        self._wal_cv = threading.Condition()
        self._wal_queue: List[str] = []
        self._wal_next_seq = 0
        self._wal_flushed_seq = -1
        self._wal_failed_seq = -1
        self._wal_failure: Optional[BaseException] = None
        self._wal_leader_active = False
        # The file handle itself (open/write/fsync/close) is guarded by
        # this mutex so the leader's batch write cannot race save()'s
        # truncation or a publish-time re-log.
        self._wal_io = threading.Lock()
        #: Observability counters for the group-commit bench row:
        #: fsyncs issued vs records logged (fsyncs/record < 1 under
        #: concurrent writers is the group commit working).
        self.wal_fsyncs = 0
        self.wal_records = 0

    def __getstate__(self):
        # Locks, file handles and threads do not pickle; a pool
        # crossing a marshalling boundary (the ORB deep-copies
        # arguments) re-arms fresh ones and loses the WAL attachment.
        state = self.__dict__.copy()
        del state["_lock"]
        state["_wal_file"] = None
        state["_merge_stop"] = None
        state["_merge_thread"] = None
        for key in (
            "_name_locks",
            "_wal_cv",
            "_wal_queue",
            "_wal_next_seq",
            "_wal_flushed_seq",
            "_wal_failed_seq",
            "_wal_failure",
            "_wal_leader_active",
            "_wal_io",
        ):
            state.pop(key, None)
        return state

    def __setstate__(self, state):
        self._lock = threading.RLock()
        self._arm_mutation_state()
        self.__dict__.update(state)

    @property
    def epoch(self) -> int:
        """Current catalog version (see :class:`PoolSnapshot`)."""
        with self._lock:
            return self._epoch

    def _invalidate_views(self, name: str) -> None:
        self._coalesced_views.pop(name, None)
        self._fragment_views.pop(name, None)

    def _mutation_lock(self, name: str) -> threading.Lock:
        """The per-name mutator mutex (created on first use).  Catalog
        writers for one name serialize here *before* touching the pool
        lock, so the heavy parts of a mutation -- building the new
        value, waiting out the group-commit fsync -- overlap freely
        across names without ever blocking readers."""
        with self._lock:
            lock = self._name_locks.get(name)
            if lock is None:
                lock = self._name_locks[name] = threading.Lock()
            return lock

    # ------------------------------------------------------------------
    # Catalog operations
    # ------------------------------------------------------------------
    def register(self, name: str, bat: BAT, *, replace: bool = False) -> BAT:
        """Register *bat* under *name* (Monet ``persists``)."""
        if not name:
            raise BBPError("BAT name must be non-empty")
        with self._mutation_lock(name):
            with self._lock:
                if name in self and not replace:
                    raise BBPError(f"BAT {name!r} already registered")
                self._fragmented.pop(name, None)
                self._invalidate_views(name)
                bat.name = name
                self._bats[name] = bat
                self._bump_oids(bat)
                self._epoch += 1
        return bat

    def register_fragmented(
        self, name: str, fragmented: FragmentedBAT, *, replace: bool = False
    ) -> FragmentedBAT:
        """Register a fragmented BAT under *name*; :meth:`lookup` will
        transparently coalesce it, :meth:`lookup_fragments` returns it
        as-is."""
        if not name:
            raise BBPError("BAT name must be non-empty")
        with self._mutation_lock(name):
            with self._lock:
                if name in self and not replace:
                    raise BBPError(f"BAT {name!r} already registered")
                self._bats.pop(name, None)
                self._invalidate_views(name)
                fragmented.name = name
                if fragmented._coalesced is not None:
                    fragmented._coalesced.name = name
                self._fragmented[name] = fragmented
                for fragment in fragmented.fragments:
                    self._bump_oids(fragment)
                self._epoch += 1
        return fragmented

    def lookup(self, name: str) -> BAT:
        """The BAT registered under *name* (MIL ``bat("name")``);
        fragmented registrations are coalesced once and the view cached
        until the name is re-registered or dropped, so repeated MIL
        references never re-materialize."""
        with self._lock:
            try:
                return self._bats[name]
            except KeyError:
                pass
            cached = self._coalesced_views.get(name)
            if cached is not None:
                return cached
            try:
                view = self._fragmented[name].to_bat()
            except KeyError:
                raise BBPError(f"no BAT named {name!r} in the pool") from None
            self._coalesced_views[name] = view
            return view

    def lookup_fragments(
        self, name: str, policy: Optional[FragmentationPolicy] = None
    ) -> FragmentedBAT:
        """A fragmented view of *name*: the registered fragmentation if
        there is one, otherwise the monolithic BAT split on the fly
        (cached per name; a different explicit *policy* re-splits)."""
        with self._lock:
            if name in self._fragmented:
                return self._fragmented[name]
            cached = self._fragment_views.get(name)
            if cached is not None and (policy is None or policy == cached.policy):
                return cached
            view = fragment_bat(self.lookup(name), policy or FragmentationPolicy())
            self._fragment_views[name] = view
            return view

    def is_fragmented(self, name: str) -> bool:
        """True when *name* is registered as a fragmented BAT."""
        return name in self._fragmented

    def exists(self, name: str) -> bool:
        return name in self

    def drop(self, name: str) -> None:
        """Remove *name* from the catalog."""
        with self._mutation_lock(name):
            with self._lock:
                if name in self._bats:
                    del self._bats[name]
                elif name in self._fragmented:
                    del self._fragmented[name]
                else:
                    raise BBPError(f"cannot drop unknown BAT {name!r}")
                self._invalidate_views(name)
                self._epoch += 1

    # ------------------------------------------------------------------
    # The write path: mutations, snapshots, delta merging
    # ------------------------------------------------------------------
    def _mutate(
        self,
        name: str,
        kind: str,
        compute: Callable,
        record_fields: Callable[[], dict],
        bump: Optional[Callable] = None,
        *,
        log: bool = True,
    ):
        """The unified mutation core behind :meth:`append`,
        :meth:`delete` and :meth:`update`.

        Flow, under the per-name mutator mutex (one in-flight mutation
        per name; other names overlap freely):

        1. read the current registration and catalog generation under
           the pool lock (brief);
        2. build the new copy-on-write value *outside* the pool lock --
           a failing batch raises here, before any WAL record exists;
        3. group-commit the WAL intent record (:meth:`_wal_log`): the
           record is durable, stamped with the generation it applies on
           top of, before anything publishes;
        4. publish under the pool lock (:meth:`_publish_mutation`): swap
           the value in, bump oids, invalidate views, bump the epoch.
           If a concurrent save slid between steps 3 and 4 it truncated
           our record while its catalog missed our rows, so the record
           is re-logged under the new generation first.

        A crash between 3 and 4 is recovered by :func:`_replay_wal`; a
        crash before 3 loses nothing and leaves no record behind.
        """
        with self._mutation_lock(name):
            with self._lock:
                if name in self._bats:
                    current: Union[BAT, FragmentedBAT] = self._bats[name]
                elif name in self._fragmented:
                    current = self._fragmented[name]
                else:
                    raise UnknownMutationTarget(
                        f"cannot {kind} unknown BAT {name!r}"
                    )
                generation = self._generation
            new = compute(current)
            if new is current:  # empty batch
                return current
            record = None
            if log and self._directory is not None:
                record = {"name": name, "generation": generation}
                record.update(record_fields())
                self._wal_log(record)
            self._publish_mutation(name, current, new, record, bump)
            return new

    def _publish_mutation(self, name, current, new, record, bump) -> None:
        """Swap the new value in under the pool lock (step 4 of
        :meth:`_mutate`; a separate method so fault-injection tests can
        crash a mutation between its fsync and its publish)."""
        with self._lock:
            if record is not None and self._generation != record["generation"]:
                # A save committed between our fsync and this publish:
                # it truncated the WAL (dropping our record) without
                # folding our rows into its catalog.  Re-log under the
                # current generation so a crash from here still
                # replays us; the stale-generation record, wherever it
                # survived, is fenced off at replay.
                self._wal_direct({**record, "generation": self._generation})
            new.name = name
            if isinstance(new, FragmentedBAT):
                self._fragmented[name] = new
            else:
                self._bats[name] = new
            if bump is not None:
                bump(current)
            self._invalidate_views(name)
            self._epoch += 1

    def append(
        self,
        name: str,
        pairs=None,
        *,
        tails=None,
        _log: bool = True,
    ):
        """Append BUNs to the registration under *name* and return the
        newly registered value (BAT or FragmentedBAT).

        Copy-on-write underneath (:meth:`BAT.append` /
        :meth:`FragmentedBAT.append`): the old object is swapped for a
        new one under the lock, so any :class:`PoolSnapshot` taken
        before the append keeps reading the old BUNs.  When the pool is
        attached to a directory, the append intent is group-committed
        to ``wal.jsonl`` (one fsync per batch of concurrent mutators,
        see :meth:`_wal_log`) after the new value has been built -- i.e.
        after the batch is known to be appendable -- but *before* the
        in-memory swap publishes it.  A crash after this method returns
        therefore never loses the append (:meth:`load` replays the log
        over the last saved catalog), while an append that *fails*
        leaves no WAL record behind to poison recovery.

        ``pairs`` is a sequence of (head, tail) Python pairs; ``tails``
        appends tail values under a densely extended void head (the
        shape of every Moa attribute BAT).  Raises
        :class:`~repro.monet.errors.MutationError` subclasses (which
        keep deriving from the historical ``BBPError``/``KernelError``).
        """
        # Materialize once up front: the batch is iterated by the
        # append itself, the WAL encoder and the oid bump, and a
        # generator argument must not leave them seeing different
        # sequences (the live pool would diverge from recovery).
        if pairs is not None:
            pairs = list(pairs)
        if tails is not None:
            tails = list(tails)

        def compute(current):
            if pairs is not None:
                return current.append(pairs)
            return current.append(tails=tails or [])

        def record_fields() -> dict:
            if pairs is not None:
                return {
                    "pairs": [[_wal_value(h), _wal_value(t)] for h, t in pairs]
                }
            return {"tails": [_wal_value(t) for t in (tails or [])]}

        def bump(current):
            self._bump_oids_batch(current, pairs, tails)

        return self._mutate(
            name, "append to", compute, record_fields, bump, log=_log
        )

    def delete(
        self,
        name: str,
        positions,
        *,
        renumber_dense_tails: bool = False,
        _log: bool = True,
    ):
        """Delete the BUNs at *positions* (0-based BUN positions) from
        the registration under *name*; returns the new value.

        The tombstone delta kind: fragmented registrations tombstone
        copy-on-write at fragment granularity
        (:meth:`FragmentedBAT.delete` -- untouched fragments shared by
        reference, dense oid heads re-densified), monolithic ones
        gather their survivors (:meth:`BAT.delete_positions`).  Durable
        and exactly-once like :meth:`append`: the intent record
        (``{"delete": [...]}``) group-commits before the publish and is
        generation-fenced at replay.

        ``renumber_dense_tails=True`` additionally rewrites a provably
        dense integer tail to the dense run of the new length -- the
        shape of a Moa extent, whose oid tail must stay ``0..n-1``
        (monolithic registrations only).
        """
        positions = [int(p) for p in positions]

        def compute(current):
            if isinstance(current, FragmentedBAT):
                if renumber_dense_tails:
                    raise InvalidMutationBatch(
                        "renumber_dense_tails applies to monolithic "
                        "registrations (Moa extents stay monolithic)"
                    )
                return current.delete(positions)
            return current.delete_positions(
                positions, renumber_dense_tail=renumber_dense_tails
            )

        def record_fields() -> dict:
            record = {"delete": positions}
            if renumber_dense_tails:
                record["renumber"] = True
            return record

        return self._mutate(
            name, "delete from", compute, record_fields, log=_log
        )

    def update(self, name: str, positions, values, *, _log: bool = True):
        """Replace the tail values at *positions* (0-based BUN
        positions, aligned with *values*; duplicates last-wins) in the
        registration under *name*; returns the new value.

        The patch delta kind: fragmented registrations patch only the
        touched fragments' tails (:meth:`FragmentedBAT.update` --
        heads, positions and untouched fragments shared by reference),
        monolithic ones patch one tail copy
        (:meth:`BAT.update_positions`).  Durable and exactly-once like
        :meth:`append`: the intent record (``{"update": [...],
        "values": [...]}``) group-commits before the publish and is
        generation-fenced at replay.
        """
        positions = [int(p) for p in positions]
        values = list(values)

        def compute(current):
            if isinstance(current, FragmentedBAT):
                return current.update(positions, values)
            return current.update_positions(positions, values)

        def record_fields() -> dict:
            return {
                "update": positions,
                "values": [_wal_value(v) for v in values],
            }

        def bump(current):
            if current.ttype == "oid":
                top = max(
                    (int(v) for v in values if v is not None), default=-1
                )
                if top >= 0:
                    self.oid_generator.bump_past(top)

        return self._mutate(
            name, "update", compute, record_fields, bump, log=_log
        )

    def _bump_oids_batch(self, value, pairs, tails) -> None:
        """Keep the oid sequence ahead of appended oid values --
        O(batch), unlike :meth:`_bump_oids` which scans whole columns."""
        top = -1
        batch_size = len(tails or [])
        if value.htype == "oid":
            if pairs is not None:
                heads = (int(h) for h, _ in pairs if h is not None)
                top = max(max(heads, default=-1), top)
            elif isinstance(value, FragmentedBAT):
                last = value.fragments[-1]
                if last.head.is_void:
                    # Dense void-head extension of the tail fragment.
                    top = max(last.head.seqbase + len(last) + batch_size - 1, top)
                else:
                    # Round-robin layouts carry materialized dense
                    # heads; append(tails=...) synthesized head oids
                    # seqbase + total + i from the same recovered
                    # seqbase.
                    try:
                        seqbase = value._dense_seqbase()
                    except KernelError:  # pragma: no cover - append raised first
                        pass
                    else:
                        top = max(seqbase + len(value) + batch_size - 1, top)
            elif value.head.is_void:
                # Dense void-head extension: the head ends at the new
                # count, so the top head oid is seqbase + count - 1.
                top = max(value.head.seqbase + len(value) + batch_size - 1, top)
        if value.ttype == "oid":
            batch = [t for _, t in pairs] if pairs is not None else list(tails or [])
            top = max(max((int(t) for t in batch if t is not None), default=-1), top)
        if top >= 0:
            self.oid_generator.bump_past(top)

    def read_snapshot(self) -> "PoolSnapshot":
        """An immutable point-in-time view of the catalog (MVCC-style
        snapshot read).  O(#names): the name->value maps are copied,
        the (immutable) values are shared."""
        with self._lock:
            return PoolSnapshot(
                self, dict(self._bats), dict(self._fragmented), self._epoch
            )

    def merge_deltas(
        self, policy: Optional[FragmentationPolicy] = None
    ) -> int:
        """One synchronous merge pass over the fragmented registrations:
        fold oversized append-tail deltas back to policy-sized
        fragments, compact starved tombstone residue, and re-partition
        skewed round-robin splits
        (:func:`repro.monet.fragments.rebalance`, which prefers the
        non-coalescing :func:`~repro.monet.fragments.fold_tail`).

        Reorganization happens *outside* the lock on the immutable
        fragment lists; the swap-in is a per-name compare-and-swap --
        if a concurrent mutation replaced the registration meanwhile,
        the stale reorganization is discarded (the next pass sees the
        new tail).  Readers are never blocked: their snapshots keep the
        old fragment objects.  Returns how many names were
        reorganized."""
        with self._lock:
            work = list(self._fragmented.items())
        merged = 0
        for name, fragmented in work:
            reorganized = _fragments.rebalance(
                fragmented, policy or fragmented.policy
            )
            if reorganized is fragmented:
                continue
            with self._lock:
                if self._fragmented.get(name) is not fragmented:
                    continue  # lost the race to an append/drop; next pass
                reorganized.name = name
                self._fragmented[name] = reorganized
                self._invalidate_views(name)
                self._epoch += 1
            merged += 1
        return merged

    def start_merge_daemon(self, interval: float = 0.1) -> None:
        """Start the background delta-merge thread (idempotent): every
        *interval* seconds it runs :meth:`merge_deltas`."""
        with self._lock:
            if self._merge_thread is not None and self._merge_thread.is_alive():
                return
            stop = threading.Event()

            def loop() -> None:
                while not stop.wait(interval):
                    try:
                        self.merge_deltas()
                    except Exception:  # pragma: no cover - daemon survives
                        pass

            thread = threading.Thread(
                target=loop, name="bbp-merge-daemon", daemon=True
            )
            self._merge_stop = stop
            self._merge_thread = thread
            thread.start()

    def stop_merge_daemon(self) -> None:
        """Stop the background merge thread and wait for it to exit."""
        with self._lock:
            stop, thread = self._merge_stop, self._merge_thread
            self._merge_stop = None
            self._merge_thread = None
        if stop is not None:
            stop.set()
        if thread is not None:
            thread.join(timeout=5.0)

    def names(self, prefix: str = "") -> List[str]:
        """Registered names, optionally filtered by prefix, sorted."""
        return sorted(n for n in self._all_names() if n.startswith(prefix))

    def _all_names(self) -> List[str]:
        with self._lock:
            return list(self._bats) + list(self._fragmented)

    def __contains__(self, name: str) -> bool:
        return name in self._bats or name in self._fragmented

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._all_names()))

    def __len__(self) -> int:
        return len(self._bats) + len(self._fragmented)

    def new_oids(self, count: int) -> int:
        """Allocate *count* fresh oids; returns the first."""
        with self._lock:
            return self.oid_generator.allocate(count)

    def _bump_oids(self, bat: BAT) -> None:
        """Keep the oid sequence ahead of any oid stored in *bat*."""
        for column in (bat.head, bat.tail):
            if column.is_void:
                top = column.seqbase + len(column) - 1
                if len(column):
                    self.oid_generator.bump_past(top)
            elif column.atom_type.name == "oid" and len(column):
                values = column.materialize()
                finite = values[values != np.iinfo(np.int64).max]
                if len(finite):
                    self.oid_generator.bump_past(int(finite.max()))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Write the whole pool to *directory* (catalog + one npz per
        BAT or fragment).

        Crash-safe: data files land under generation-stamped names via
        temp-file + ``os.replace``, and the catalog replacement is the
        single atomic commit point -- a crash anywhere mid-save leaves
        the previous complete catalog (and the files it references)
        intact.  Files the new catalog no longer references (the old
        generation, aborted-save leftovers) are deleted after the
        commit.  A successful save supersedes the append WAL, which is
        truncated; the pool stays *attached* to the directory so
        subsequent appends log their intent there."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with self._lock:
            self._save_locked(directory)
            self._attach_locked(directory)
            self._wal_truncate_locked()

    def _save_locked(self, directory: Path) -> None:
        generation = self._generation
        existing = directory / "catalog.json"
        if existing.exists():
            try:
                generation = max(
                    generation,
                    int(json.loads(existing.read_text()).get("generation", 0)),
                )
            except (OSError, ValueError, json.JSONDecodeError):
                pass
        generation += 1
        catalog = {
            "oid_next": self.oid_generator.current,
            "generation": generation,
            "bats": {},
        }
        tuning = _fragments.default_tuning()
        if tuning["measured"]:
            # Calibrated fragment tuning persists next to the catalog so
            # a restarted server skips the measurement pass (see
            # benchmarks/bench_fragments.py calibrate()).
            catalog["tuning"] = {
                "fragment_size": tuning["fragment_size"],
                "parallel_min": tuning["parallel_min"],
                "merge_fanout": tuning["merge_fanout"],
                "backend": tuning["backend"],
                "process_min": tuning["process_min"],
                "join_fanout": tuning["join_fanout"],
                "join_spill": tuning["join_spill"],
            }
        # Session-private temps (the @<sid>: namespace) are tentative by
        # definition -- they must not be resurrected on reload.
        entries = sorted(n for n in self._all_names() if not n.startswith("@"))
        for index, name in enumerate(entries):
            if name in self._bats:
                bat = self._bats[name]
                filename = f"bat_g{generation:04d}_{index:05d}.npz"
                entry, arrays = _bat_entry(bat, filename)
                _write_npz_atomic(directory, filename, arrays)
            else:
                fragmented = self._fragmented[name]
                entry = {
                    "fragmented": True,
                    "strategy": fragmented.policy.strategy,
                    "target_size": fragmented.policy.target_size,
                    "workers": fragmented.policy.workers,
                    "fragments": [],
                }
                for findex, fragment in enumerate(fragmented.fragments):
                    filename = f"bat_g{generation:04d}_{index:05d}_f{findex:03d}.npz"
                    sub_entry, arrays = _bat_entry(fragment, filename)
                    if fragmented.positions is not None:
                        arrays["positions"] = fragmented.positions[findex]
                        sub_entry["has_positions"] = True
                    _write_npz_atomic(directory, filename, arrays)
                    entry["fragments"].append(sub_entry)
            catalog["bats"][name] = entry
        # The commit point: everything before this is invisible to load.
        replace_text(directory / "catalog.json", json.dumps(catalog, indent=1))
        self._generation = generation
        _sweep_unreferenced(directory, catalog, reclaim_own_tmp=True)

    # -- WAL attachment ------------------------------------------------
    def _attach_locked(self, directory: Path) -> None:
        directory = Path(directory)
        with self._wal_io:
            if self._directory != directory and self._wal_file is not None:
                try:
                    self._wal_file.close()
                except OSError:  # pragma: no cover - close best-effort
                    pass
                self._wal_file = None
            self._directory = directory

    def _wal_log(self, record: dict) -> None:
        """Group-commit one mutation intent record.

        Mutators enqueue their encoded line and the first waiter
        elects itself *leader*: it sleeps out the :data:`WAL_GROUP_MS`
        window (so concurrent arrivals pile on), drains the whole
        queue, writes it in one system call and issues **one fsync**
        for the batch, then wakes the followers.  Mutators that arrive
        while a flush is in flight simply form the next batch -- so
        even at a zero window, N concurrent writers share far fewer
        than N fsyncs.  A record is *committed* once its full line
        (with trailing newline) is durable; :meth:`load` discards a
        torn final line.

        Each record is fenced with the catalog generation it applies on
        top of: a save folds every applied mutation into the next
        generation's catalog, so if a crash lands between the catalog
        commit and the WAL truncation, :func:`_replay_wal` sees the
        stale records stamped with the *previous* generation and skips
        them instead of silently duplicating the mutations.  A failed
        flush raises in every mutator whose record it covered -- none
        of them publish."""
        if self._directory is None:
            return
        line = json.dumps(record) + "\n"
        with self._wal_cv:
            seq = self._wal_next_seq
            self._wal_next_seq += 1
            self._wal_queue.append(line)
            self.wal_records += 1
            while True:
                if self._wal_flushed_seq >= seq:
                    return
                if self._wal_failed_seq >= seq:
                    raise BBPError(
                        f"WAL group commit failed: {self._wal_failure}"
                    )
                if not self._wal_leader_active:
                    self._wal_leader_active = True
                    break
                self._wal_cv.wait()
        # This mutator is the leader for the next batch.
        try:
            window = WAL_GROUP_MS
            if window > 0:
                time.sleep(window / 1000.0)
            with self._wal_cv:
                batch = self._wal_queue
                self._wal_queue = []
                top = self._wal_next_seq - 1
            failure: Optional[BaseException] = None
            if batch:
                try:
                    self._wal_write_batch(batch)
                except Exception as exc:
                    failure = exc
        except BaseException:
            # Interrupted before an outcome existed: hand leadership
            # back so waiting followers can elect a new leader.
            with self._wal_cv:
                self._wal_leader_active = False
                self._wal_cv.notify_all()
            raise
        # Publish the outcome and step down in one critical section, so
        # no follower can observe a leaderless, outcome-less state.
        with self._wal_cv:
            if failure is None:
                self._wal_flushed_seq = max(self._wal_flushed_seq, top)
            else:
                self._wal_failed_seq = max(self._wal_failed_seq, top)
                self._wal_failure = failure
            self._wal_leader_active = False
            self._wal_cv.notify_all()
            if self._wal_failed_seq >= seq:
                raise BBPError(f"WAL group commit failed: {self._wal_failure}")

    def _wal_write_batch(self, lines: List[str]) -> None:
        """Write *lines* to the WAL and fsync once (the leader's half
        of the group commit).  The file handle is guarded by
        ``_wal_io`` so the batch write cannot race save()'s truncation
        or a publish-time re-log."""
        with self._wal_io:
            if self._directory is None:
                return
            if self._wal_file is None:
                self._wal_file = open(
                    self._directory / "wal.jsonl", "a", encoding="utf-8"
                )
            self._wal_file.write("".join(lines))
            self._wal_file.flush()
            os.fsync(self._wal_file.fileno())
            self.wal_fsyncs += 1

    def _wal_direct(self, record: dict) -> None:
        """Write one record immediately (flush + fsync), bypassing the
        group queue -- the rare publish-time re-log after a save raced
        a mutation (see :meth:`_publish_mutation`); called under the
        pool lock."""
        if self._directory is None:
            return
        with self._wal_io:
            if self._wal_file is None:
                self._wal_file = open(
                    self._directory / "wal.jsonl", "a", encoding="utf-8"
                )
            self._wal_file.write(json.dumps(record) + "\n")
            self._wal_file.flush()
            os.fsync(self._wal_file.fileno())
            self.wal_fsyncs += 1
            self.wal_records += 1

    def _wal_truncate_locked(self) -> None:
        with self._wal_io:
            if self._wal_file is not None:
                try:
                    self._wal_file.close()
                except OSError:  # pragma: no cover - close best-effort
                    pass
                self._wal_file = None
            if self._directory is not None:
                (self._directory / "wal.jsonl").unlink(missing_ok=True)

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "BATBufferPool":
        """Read a pool previously written by :meth:`save`.

        Recovery-safe: the catalog names exactly the data files of the
        last complete save; dead leftovers of crashed saves are swept
        (a concurrent saver's newer-generation files and live writers'
        temp files are kept, see :func:`_sweep_unreferenced`), and
        committed append intents in ``wal.jsonl`` are replayed on top
        -- a torn trailing record (crash mid-append) is discarded and
        records a newer catalog already folded in are fenced off by
        generation, so the pool never surfaces a partial append nor
        replays one twice."""
        directory = Path(directory)
        catalog_path = directory / "catalog.json"
        if not catalog_path.exists():
            raise BBPError(f"no catalog.json under {directory}")
        catalog = json.loads(catalog_path.read_text())
        tuning = catalog.get("tuning")
        if tuning:
            _install_persisted_tuning(tuning)
        pool = cls()
        for name, entry in catalog["bats"].items():
            if name.startswith("@"):
                # Session temps leaked into a catalog written before the
                # @-namespace exclusion; dead sessions stay dead.
                continue
            if entry.get("fragmented"):
                fragments: List[BAT] = []
                positions: List[np.ndarray] = []
                has_positions = False
                for sub_entry in entry["fragments"]:
                    with np.load(
                        directory / sub_entry["file"], allow_pickle=True
                    ) as data:
                        fragments.append(_restore_bat(sub_entry, data, name=None))
                        if sub_entry.get("has_positions"):
                            has_positions = True
                            positions.append(np.asarray(data["positions"], np.int64))
                policy = FragmentationPolicy(
                    # Legacy catalogs without a stored size pick up the
                    # current (possibly calibrated) default at load time.
                    target_size=entry.get("target_size")
                    or _fragments.DEFAULT_FRAGMENT_SIZE,
                    strategy=entry.get("strategy", "range"),
                    workers=entry.get("workers"),
                )
                pool._fragmented[name] = FragmentedBAT(
                    fragments,
                    positions if has_positions else None,
                    policy=policy,
                    name=name,
                )
            else:
                with np.load(directory / entry["file"], allow_pickle=True) as data:
                    pool._bats[name] = _restore_bat(entry, data, name=name)
        pool.oid_generator.bump_past(catalog.get("oid_next", 0) - 1)
        pool._generation = int(catalog.get("generation", 0))
        _sweep_unreferenced(directory, catalog)
        _replay_wal(pool, directory)
        with pool._lock:
            pool._attach_locked(directory)
        return pool


class PoolSnapshot:
    """An immutable point-in-time view of a pool's catalog (MVCC-style
    snapshot read), stamped with the :attr:`epoch` it froze at.

    The MIL interpreter pins one snapshot per plan: ``bat("name")``
    resolves against the frozen name->value maps, so a pipeline never
    observes a concurrent append/drop mid-plan (no torn appends --
    every read of a name sees the same BUNs for the whole plan).  The
    values themselves are shared with the live pool; that is safe
    because BATs and FragmentedBATs are copy-on-write (appends swap in
    new objects, they never mutate registered ones).

    Writes issued *by the plan itself* (``persists`` / ``unpersists``)
    write through to the live pool **and** update the snapshot's own
    maps, so a plan sees its own effects while staying isolated from
    everyone else's.

    A snapshot belongs to one plan on one thread; its lazy view caches
    (coalesce/split) are unsynchronized by design.
    """

    def __init__(
        self,
        pool: BATBufferPool,
        bats: Dict[str, BAT],
        fragmented: Dict[str, FragmentedBAT],
        epoch: int,
    ):
        self._pool = pool
        self._bats = bats
        self._fragmented = fragmented
        self._coalesced_views: Dict[str, BAT] = {}
        self._fragment_views: Dict[str, FragmentedBAT] = {}
        self.epoch = epoch

    def read_snapshot(self) -> "PoolSnapshot":
        """Snapshots are idempotent: pinning a pinned view is a no-op."""
        return self

    # -- reads (frozen) ------------------------------------------------
    def is_fragmented(self, name: str) -> bool:
        return name in self._fragmented

    def exists(self, name: str) -> bool:
        return name in self

    def __contains__(self, name: str) -> bool:
        return name in self._bats or name in self._fragmented

    def lookup(self, name: str) -> BAT:
        try:
            return self._bats[name]
        except KeyError:
            pass
        cached = self._coalesced_views.get(name)
        if cached is not None:
            return cached
        try:
            view = self._fragmented[name].to_bat()
        except KeyError:
            raise BBPError(f"no BAT named {name!r} in the pool") from None
        self._coalesced_views[name] = view
        return view

    def lookup_fragments(
        self, name: str, policy: Optional[FragmentationPolicy] = None
    ) -> FragmentedBAT:
        if name in self._fragmented:
            return self._fragmented[name]
        cached = self._fragment_views.get(name)
        if cached is not None and (policy is None or policy == cached.policy):
            return cached
        view = fragment_bat(self.lookup(name), policy or FragmentationPolicy())
        self._fragment_views[name] = view
        return view

    # -- writes (write-through + local adoption) -----------------------
    def register(self, name: str, bat: BAT, *, replace: bool = False) -> BAT:
        result = self._pool.register(name, bat, replace=replace)
        self._adopt(name, result)
        return result

    def register_fragmented(
        self, name: str, fragmented: FragmentedBAT, *, replace: bool = False
    ) -> FragmentedBAT:
        result = self._pool.register_fragmented(name, fragmented, replace=replace)
        self._adopt(name, result)
        return result

    def drop(self, name: str) -> None:
        if name not in self:
            raise BBPError(f"cannot drop unknown BAT {name!r}")
        try:
            self._pool.drop(name)
        except BBPError:
            pass  # a concurrent writer already dropped it live
        self._discard(name)

    def append(self, name: str, pairs=None, *, tails=None):
        result = self._pool.append(name, pairs, tails=tails)
        self._adopt(name, result)
        return result

    def delete(self, name: str, positions, *, renumber_dense_tails: bool = False):
        result = self._pool.delete(
            name, positions, renumber_dense_tails=renumber_dense_tails
        )
        self._adopt(name, result)
        return result

    def update(self, name: str, positions, values):
        result = self._pool.update(name, positions, values)
        self._adopt(name, result)
        return result

    def new_oids(self, count: int) -> int:
        return self._pool.new_oids(count)

    def _adopt(self, name: str, value: Union[BAT, FragmentedBAT]) -> None:
        self._discard(name)
        if isinstance(value, FragmentedBAT):
            self._fragmented[name] = value
        else:
            self._bats[name] = value

    def _discard(self, name: str) -> None:
        self._bats.pop(name, None)
        self._fragmented.pop(name, None)
        self._coalesced_views.pop(name, None)
        self._fragment_views.pop(name, None)


def _write_npz_atomic(directory: Path, filename: str, arrays: dict) -> None:
    """Write one npz data file via temp + fsync + ``os.replace`` so a
    crash can never leave a half-written file under its final name."""
    tmp = directory / f"{filename}.tmp-{os.getpid()}"
    with open(tmp, "wb") as fh:
        np.savez(fh, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, directory / filename)


def replace_text(path: Path, text: str) -> None:
    """Atomically replace *path* with *text* (temp + fsync + replace +
    best-effort directory fsync) -- the WAL/catalog commit primitive,
    shared by every text file persisted next to the catalog (the
    MirrorDBMS uses it for ``schema.ddl``)."""
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


_FILE_GENERATION_RE = re.compile(r"^bat_g(\d+)_")


def _file_generation(filename: str) -> Optional[int]:
    """Generation stamped into a data-file name, or None (legacy/alien
    layouts)."""
    match = _FILE_GENERATION_RE.match(filename)
    return int(match.group(1)) if match else None


def _pid_alive(pid: int) -> bool:
    """Liveness probe for sweep decisions: only a pid that provably
    maps to no process is considered dead (EPERM etc. count as alive --
    when unknowable, never reclaim)."""
    if pid == os.getpid():
        return True
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        pass  # alive under another uid (EPERM) or unknowable
    return True


def _sweep_unreferenced(
    directory: Path, catalog: dict, *, reclaim_own_tmp: bool = False
) -> int:
    """Delete data files the committed *catalog* does not reference:
    the previous generation after a successful save, or the
    half-written files of a crashed one.  Returns how many were removed.

    Two guards keep the sweep safe next to concurrent writers on the
    same directory:

    * npz files of a generation *newer* than the catalog belong to a
      saver whose commit has not landed yet (another process mid-save);
      deleting them would leave its freshly committed catalog pointing
      at nothing.  They are kept -- if that save in fact crashed, the
      sweep after the next successful save reclaims them.
    * ``*.tmp-<pid>`` scratch files are only reclaimed once the owning
      process is dead (same liveness probe as
      :func:`sweep_stale_spill_dirs`), or -- from :meth:`save`, which
      holds the writer's lock so no sibling write is in flight -- when
      they are this process's own leftovers (*reclaim_own_tmp*).
    """
    generation = int(catalog.get("generation", 0))
    referenced = set()
    for entry in catalog.get("bats", {}).values():
        if entry.get("fragmented"):
            referenced.update(sub["file"] for sub in entry["fragments"])
        else:
            referenced.add(entry["file"])
    victims = []
    for path in directory.glob("bat_*.npz"):
        if path.name in referenced:
            continue
        file_generation = _file_generation(path.name)
        if file_generation is not None and file_generation > generation:
            continue  # a concurrent saver's uncommitted next generation
        victims.append(path)
    for path in directory.glob("*.tmp-*"):
        pid_text = path.name.rsplit(".tmp-", 1)[1]
        if pid_text.isdigit():
            pid = int(pid_text)
            if pid == os.getpid():
                if not reclaim_own_tmp:
                    continue
            elif _pid_alive(pid):
                continue  # a live writer's in-flight temp file
        victims.append(path)
    removed = 0
    for path in victims:
        try:
            path.unlink()
            removed += 1
        except OSError:  # pragma: no cover - concurrent sweep
            pass
    return removed


def _wal_value(value):
    """JSON-safe form of one appended Python value (numpy scalars
    unwrap; dbl NIL rides as NaN, which json round-trips)."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def _replay_wal(pool: "BATBufferPool", directory: Path) -> int:
    """Replay committed append intents over a freshly loaded pool.

    Only complete lines count (a record commits when its trailing
    newline is durable); the first torn/corrupt line discards itself
    and everything after it.  Records are fenced by generation: each
    carries the catalog generation it was logged on top of, and only
    records matching the loaded catalog's generation replay -- a WAL
    that survived a crash between the catalog commit and its own
    truncation is already folded into that catalog, and replaying it
    would silently duplicate every append since the previous save.
    Appends naming BATs absent from the catalog are skipped -- a
    registration that was never saved is not resurrected by its
    appends -- and a record that no longer applies (e.g. logged by a
    buggy or older writer) is skipped with a warning rather than
    rendering the store unloadable.  Returns how many records applied.
    """
    path = directory / "wal.jsonl"
    if not path.exists():
        return 0
    generation = pool._generation
    text = path.read_text(encoding="utf-8", errors="replace")
    applied = 0
    lines = text.split("\n")
    # Everything before the final "\n" is a complete line; the chunk
    # after it (empty on a clean file) is a torn record.
    for line in lines[:-1]:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, ValueError):
            break
        record_generation = record.get("generation")
        if record_generation is not None and record_generation != generation:
            continue  # already folded into the loaded catalog
        name = record.get("name")
        if not isinstance(name, str) or name not in pool:
            continue
        try:
            if "pairs" in record:
                pool.append(
                    name, pairs=[tuple(p) for p in record["pairs"]], _log=False
                )
            elif "delete" in record:
                pool.delete(
                    name,
                    record["delete"],
                    renumber_dense_tails=bool(record.get("renumber")),
                    _log=False,
                )
            elif "update" in record:
                pool.update(
                    name, record["update"], record.get("values", []), _log=False
                )
            else:
                pool.append(name, tails=record.get("tails", []), _log=False)
        except MonetError as exc:
            warnings.warn(
                f"skipping unreplayable WAL record for {name!r}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        applied += 1
    return applied


def _install_persisted_tuning(tuning: dict) -> None:
    """Reinstall calibrated fragment tuning found next to a catalog, so
    a restarted server skips the measurement pass.  Explicit
    environment overrides (``REPRO_FRAGMENT_SIZE`` /
    ``REPRO_PARALLEL_MIN_BUNS`` / ``REPRO_MERGE_FANOUT`` /
    ``REPRO_EXECUTOR_BACKEND`` / ``REPRO_PROCESS_MIN_BUNS`` /
    ``REPRO_JOIN_FANOUT`` / ``REPRO_JOIN_SPILL_BUNS``) win over
    persisted values, knob by knob."""
    import os

    fragment_size = (
        None if os.environ.get("REPRO_FRAGMENT_SIZE") else tuning.get("fragment_size")
    )
    parallel_min = (
        None
        if os.environ.get("REPRO_PARALLEL_MIN_BUNS")
        else tuning.get("parallel_min")
    )
    merge_fanout = (
        None if os.environ.get("REPRO_MERGE_FANOUT") else tuning.get("merge_fanout")
    )
    backend = (
        None if os.environ.get("REPRO_EXECUTOR_BACKEND") else tuning.get("backend")
    )
    process_min = (
        None
        if os.environ.get("REPRO_PROCESS_MIN_BUNS")
        else tuning.get("process_min")
    )
    join_fanout = (
        None if os.environ.get("REPRO_JOIN_FANOUT") else tuning.get("join_fanout")
    )
    join_spill = (
        None
        if os.environ.get("REPRO_JOIN_SPILL_BUNS")
        else tuning.get("join_spill")
    )
    values = (
        fragment_size,
        parallel_min,
        merge_fanout,
        backend,
        process_min,
        join_fanout,
        join_spill,
    )
    if any(value is not None for value in values):
        _fragments.set_default_tuning(
            fragment_size=fragment_size,
            parallel_min=parallel_min,
            merge_fanout=merge_fanout,
            backend=backend,
            process_min=process_min,
            join_fanout=join_fanout,
            join_spill=join_spill,
        )


# ----------------------------------------------------------------------
# Operator spill units
#
# Out-of-core operators (the grace hash join's partitioned build in
# :mod:`repro.monet.fragments`) park intermediate partitions on disk as
# npz units under a process-wide scratch directory, the BBP's transient
# sibling of the persistent per-fragment files above.  Units are
# same-process transients, so -- unlike catalog files -- object (str)
# arrays may ride npz's pickle path directly and no catalog entry or
# NIL marker translation is involved.
# ----------------------------------------------------------------------

_SPILL_ROOT: Optional[Path] = None
_SPILL_COUNTER = itertools.count()
_SPILL_PREFIX = "repro-bbp-spill-"
_SPILL_SWEPT = False


def spill_directory() -> Path:
    """Scratch directory for operator spill units, created lazily and
    removed at interpreter exit.  The directory name embeds this
    process's pid so a crashed process's orphans can be liveness-checked
    and swept by the next one (:func:`sweep_stale_spill_dirs`)."""
    global _SPILL_ROOT
    if _SPILL_ROOT is None:
        _SPILL_ROOT = Path(
            tempfile.mkdtemp(prefix=f"{_SPILL_PREFIX}{os.getpid()}-")
        )
        atexit.register(_cleanup_spill_directory)
    return _SPILL_ROOT


def sweep_stale_spill_dirs() -> int:
    """Remove spill directories left by *dead* processes.

    ``atexit`` cleanup never runs for a crashed/killed process, so its
    spill tempdirs leaked forever.  Spill directory names embed the
    owning pid; any such directory whose pid no longer maps to a live
    process is stale and removed.  Directories with unparseable names
    (pre-pid-stamp layouts) and live owners are left alone.  Returns
    how many directories were removed."""
    removed = 0
    try:
        entries = list(Path(tempfile.gettempdir()).glob(f"{_SPILL_PREFIX}*"))
    except OSError:  # pragma: no cover - tempdir unreadable
        return 0
    for entry in entries:
        pid_text = entry.name[len(_SPILL_PREFIX):].split("-", 1)[0]
        if not pid_text.isdigit():
            continue
        if _pid_alive(int(pid_text)):
            continue  # alive (or our own, or unknowable): not ours to reclaim
        shutil.rmtree(entry, ignore_errors=True)
        removed += 1
    return removed


def _sweep_spill_once() -> None:
    """Run the stale-spill sweep the first time a pool starts in this
    process (pool startup is the natural recovery point)."""
    global _SPILL_SWEPT
    if _SPILL_SWEPT:
        return
    _SPILL_SWEPT = True
    try:
        sweep_stale_spill_dirs()
    except Exception:  # pragma: no cover - sweep must never break init
        pass


def _cleanup_spill_directory() -> None:
    global _SPILL_ROOT
    root, _SPILL_ROOT = _SPILL_ROOT, None
    if root is not None:
        shutil.rmtree(root, ignore_errors=True)


def new_spill_tag(prefix: str) -> str:
    """A unique (per process, per call) spill-unit tag."""
    return f"{prefix}-{os.getpid():x}-{next(_SPILL_COUNTER):06d}"


def write_spill_unit(tag: str, **arrays: np.ndarray) -> Path:
    """Write the named *arrays* as one npz spill unit; returns its path."""
    path = spill_directory() / f"{tag}.npz"
    np.savez(path, **arrays)
    return path


def read_spill_unit(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Load every array of a spill unit back into memory."""
    with np.load(path, allow_pickle=True) as data:
        return {key: data[key] for key in data.files}


def drop_spill_unit(path: Union[str, Path]) -> None:
    """Delete one spill unit (idempotent)."""
    Path(path).unlink(missing_ok=True)


#: NIL marker for persisted string columns.  No trailing NUL: numpy
#: unicode arrays strip trailing NULs on read, so the marker must not
#: end in one.
_STR_NIL_MARKER = "\x00NIL"


def _bat_entry(bat: BAT, filename: str) -> tuple:
    """Catalog entry + storable arrays for one BAT (or fragment)."""
    entry = {
        "file": filename,
        "htype": bat.htype,
        "ttype": bat.ttype,
        "hsorted": bat.hsorted,
        "tsorted": bat.tsorted,
        "hkey": bat.hkey,
        "tkey": bat.tkey,
        "hvoid": bat.head.is_void,
        "tvoid": bat.tail.is_void,
    }
    arrays = {}
    if bat.head.is_void:
        entry["hseqbase"] = bat.head.seqbase
        entry["count"] = len(bat)
    else:
        arrays["head"] = _storable(bat.head_values())
    if bat.tail.is_void:
        entry["tseqbase"] = bat.tail.seqbase
        entry["count"] = len(bat)
    else:
        arrays["tail"] = _storable(bat.tail_values())
    return entry, arrays


def _restore_bat(entry: dict, data, name: Optional[str]) -> BAT:
    head = _restore_column(entry, data, "h", "head")
    tail = _restore_column(entry, data, "t", "tail")
    return BAT(
        head,
        tail,
        hsorted=entry["hsorted"],
        tsorted=entry["tsorted"],
        hkey=entry["hkey"],
        tkey=entry["tkey"],
        name=name,
    )


def _storable(values: np.ndarray) -> np.ndarray:
    """Object (string) arrays are stored as unicode arrays; None becomes
    the reserved marker so NILs round-trip."""
    if values.dtype == np.dtype(object):
        return np.array(
            [_STR_NIL_MARKER if v is None else v for v in values], dtype=str
        )
    return values


def _restore_column(entry: dict, data, prefix: str, key: str):
    if entry[f"{prefix}void"]:
        return VoidColumn(entry[f"{prefix}seqbase"], entry["count"])
    atom_name = entry["htype"] if prefix == "h" else entry["ttype"]
    raw = data[key]
    if atom_name == "str":
        values = np.empty(len(raw), dtype=object)
        for position, item in enumerate(raw):
            text = str(item)
            values[position] = None if text == _STR_NIL_MARKER else text
        return Column("str", values)
    return Column(atom_name, raw.astype(atom(atom_name).dtype))
