"""The BAT Buffer Pool (BBP): Monet's catalog of named persistent BATs.

Every persistent BAT in a Monet database is registered in the BBP under
a logical name; MIL programs refer to persistent BATs with ``bat("name")``.
The Moa mapping layer stores each logical attribute under a dotted name
such as ``ImageLibrary.annotation.tf`` (see :mod:`repro.moa.mapping`).

Large attributes may be registered *fragmented*
(:class:`repro.monet.fragments.FragmentedBAT`): the pool keeps the
fragments as the unit of storage and persistence, while :meth:`lookup`
stays transparent by lazily coalescing to a monolithic BAT (cached).
Fragment-aware callers use :meth:`lookup_fragments` to run the
fragment-parallel operators of :mod:`repro.monet.fragments`.

Persistence is a directory with one ``.npz`` per BAT (one per fragment
for fragmented BATs) plus a JSON catalog.  It deliberately mirrors
Monet's "BBP dir + heap files" layout at a coarse granularity: enough
to round-trip a whole Mirror database.  Calibrated fragment tuning
(:func:`repro.monet.fragments.set_default_tuning` values) rides along
in the catalog, so a reloaded database skips the measurement pass.
"""

from __future__ import annotations

import atexit
import itertools
import json
import os
import shutil
import tempfile
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

import numpy as np

from repro.monet.atoms import OidGenerator, atom
from repro.monet.bat import BAT, Column, VoidColumn
from repro.monet.errors import BBPError
from repro.monet import fragments as _fragments
from repro.monet.fragments import (
    FragmentationPolicy,
    FragmentedBAT,
    fragment_bat,
)


class BATBufferPool:
    """Mutable registry name -> BAT with save/load and an oid sequence.

    Names map to either a monolithic BAT or a fragmented one; the two
    sub-catalogs share one namespace.

    The pool is thread-safe: one re-entrant lock guards the two
    sub-catalogs, both view caches and the oid sequence, so concurrent
    sessions of the query service can register, drop and look up names
    against one shared pool.  Lookups hold the lock while a coalesced
    or split view materializes -- a concurrent re-register of the same
    name therefore either happens-before (the new view is built from
    the new registration) or happens-after (its invalidation evicts the
    view just cached); a stale view can never survive the
    invalidation.
    """

    def __init__(self):
        self._bats: Dict[str, BAT] = {}
        self._fragmented: Dict[str, FragmentedBAT] = {}
        # Per-name view caches, invalidated on (re-)register and drop:
        # coalesced monolithic views of fragmented registrations
        # (lookup) and on-the-fly fragmentations of monolithic
        # registrations (lookup_fragments).  Without these, every MIL
        # reference to the same name would re-materialize the view.
        self._coalesced_views: Dict[str, BAT] = {}
        self._fragment_views: Dict[str, FragmentedBAT] = {}
        self._lock = threading.RLock()
        self.oid_generator = OidGenerator()

    def __getstate__(self):
        # Locks do not pickle; a pool crossing a marshalling boundary
        # (the ORB deep-copies arguments) re-arms a fresh one.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def _invalidate_views(self, name: str) -> None:
        self._coalesced_views.pop(name, None)
        self._fragment_views.pop(name, None)

    # ------------------------------------------------------------------
    # Catalog operations
    # ------------------------------------------------------------------
    def register(self, name: str, bat: BAT, *, replace: bool = False) -> BAT:
        """Register *bat* under *name* (Monet ``persists``)."""
        if not name:
            raise BBPError("BAT name must be non-empty")
        with self._lock:
            if name in self and not replace:
                raise BBPError(f"BAT {name!r} already registered")
            self._fragmented.pop(name, None)
            self._invalidate_views(name)
            bat.name = name
            self._bats[name] = bat
            self._bump_oids(bat)
        return bat

    def register_fragmented(
        self, name: str, fragmented: FragmentedBAT, *, replace: bool = False
    ) -> FragmentedBAT:
        """Register a fragmented BAT under *name*; :meth:`lookup` will
        transparently coalesce it, :meth:`lookup_fragments` returns it
        as-is."""
        if not name:
            raise BBPError("BAT name must be non-empty")
        with self._lock:
            if name in self and not replace:
                raise BBPError(f"BAT {name!r} already registered")
            self._bats.pop(name, None)
            self._invalidate_views(name)
            fragmented.name = name
            if fragmented._coalesced is not None:
                fragmented._coalesced.name = name
            self._fragmented[name] = fragmented
            for fragment in fragmented.fragments:
                self._bump_oids(fragment)
        return fragmented

    def lookup(self, name: str) -> BAT:
        """The BAT registered under *name* (MIL ``bat("name")``);
        fragmented registrations are coalesced once and the view cached
        until the name is re-registered or dropped, so repeated MIL
        references never re-materialize."""
        with self._lock:
            try:
                return self._bats[name]
            except KeyError:
                pass
            cached = self._coalesced_views.get(name)
            if cached is not None:
                return cached
            try:
                view = self._fragmented[name].to_bat()
            except KeyError:
                raise BBPError(f"no BAT named {name!r} in the pool") from None
            self._coalesced_views[name] = view
            return view

    def lookup_fragments(
        self, name: str, policy: Optional[FragmentationPolicy] = None
    ) -> FragmentedBAT:
        """A fragmented view of *name*: the registered fragmentation if
        there is one, otherwise the monolithic BAT split on the fly
        (cached per name; a different explicit *policy* re-splits)."""
        with self._lock:
            if name in self._fragmented:
                return self._fragmented[name]
            cached = self._fragment_views.get(name)
            if cached is not None and (policy is None or policy == cached.policy):
                return cached
            view = fragment_bat(self.lookup(name), policy or FragmentationPolicy())
            self._fragment_views[name] = view
            return view

    def is_fragmented(self, name: str) -> bool:
        """True when *name* is registered as a fragmented BAT."""
        return name in self._fragmented

    def exists(self, name: str) -> bool:
        return name in self

    def drop(self, name: str) -> None:
        """Remove *name* from the catalog."""
        with self._lock:
            if name in self._bats:
                del self._bats[name]
            elif name in self._fragmented:
                del self._fragmented[name]
            else:
                raise BBPError(f"cannot drop unknown BAT {name!r}")
            self._invalidate_views(name)

    def names(self, prefix: str = "") -> List[str]:
        """Registered names, optionally filtered by prefix, sorted."""
        return sorted(n for n in self._all_names() if n.startswith(prefix))

    def _all_names(self) -> List[str]:
        with self._lock:
            return list(self._bats) + list(self._fragmented)

    def __contains__(self, name: str) -> bool:
        return name in self._bats or name in self._fragmented

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._all_names()))

    def __len__(self) -> int:
        return len(self._bats) + len(self._fragmented)

    def new_oids(self, count: int) -> int:
        """Allocate *count* fresh oids; returns the first."""
        with self._lock:
            return self.oid_generator.allocate(count)

    def _bump_oids(self, bat: BAT) -> None:
        """Keep the oid sequence ahead of any oid stored in *bat*."""
        for column in (bat.head, bat.tail):
            if column.is_void:
                top = column.seqbase + len(column) - 1
                if len(column):
                    self.oid_generator.bump_past(top)
            elif column.atom_type.name == "oid" and len(column):
                values = column.materialize()
                finite = values[values != np.iinfo(np.int64).max]
                if len(finite):
                    self.oid_generator.bump_past(int(finite.max()))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Write the whole pool to *directory* (catalog + one npz per
        BAT or fragment)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with self._lock:
            self._save_locked(directory)

    def _save_locked(self, directory: Path) -> None:
        catalog = {"oid_next": self.oid_generator.current, "bats": {}}
        tuning = _fragments.default_tuning()
        if tuning["measured"]:
            # Calibrated fragment tuning persists next to the catalog so
            # a restarted server skips the measurement pass (see
            # benchmarks/bench_fragments.py calibrate()).
            catalog["tuning"] = {
                "fragment_size": tuning["fragment_size"],
                "parallel_min": tuning["parallel_min"],
                "merge_fanout": tuning["merge_fanout"],
                "backend": tuning["backend"],
                "process_min": tuning["process_min"],
                "join_fanout": tuning["join_fanout"],
                "join_spill": tuning["join_spill"],
            }
        entries = sorted(self._all_names())
        for index, name in enumerate(entries):
            if name in self._bats:
                bat = self._bats[name]
                filename = f"bat_{index:05d}.npz"
                entry, arrays = _bat_entry(bat, filename)
                np.savez(directory / filename, **arrays)
            else:
                fragmented = self._fragmented[name]
                entry = {
                    "fragmented": True,
                    "strategy": fragmented.policy.strategy,
                    "target_size": fragmented.policy.target_size,
                    "workers": fragmented.policy.workers,
                    "fragments": [],
                }
                for findex, fragment in enumerate(fragmented.fragments):
                    filename = f"bat_{index:05d}_f{findex:03d}.npz"
                    sub_entry, arrays = _bat_entry(fragment, filename)
                    if fragmented.positions is not None:
                        arrays["positions"] = fragmented.positions[findex]
                        sub_entry["has_positions"] = True
                    np.savez(directory / filename, **arrays)
                    entry["fragments"].append(sub_entry)
            catalog["bats"][name] = entry
        (directory / "catalog.json").write_text(json.dumps(catalog, indent=1))

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "BATBufferPool":
        """Read a pool previously written by :meth:`save`."""
        directory = Path(directory)
        catalog_path = directory / "catalog.json"
        if not catalog_path.exists():
            raise BBPError(f"no catalog.json under {directory}")
        catalog = json.loads(catalog_path.read_text())
        tuning = catalog.get("tuning")
        if tuning:
            _install_persisted_tuning(tuning)
        pool = cls()
        for name, entry in catalog["bats"].items():
            if entry.get("fragmented"):
                fragments: List[BAT] = []
                positions: List[np.ndarray] = []
                has_positions = False
                for sub_entry in entry["fragments"]:
                    with np.load(
                        directory / sub_entry["file"], allow_pickle=True
                    ) as data:
                        fragments.append(_restore_bat(sub_entry, data, name=None))
                        if sub_entry.get("has_positions"):
                            has_positions = True
                            positions.append(np.asarray(data["positions"], np.int64))
                policy = FragmentationPolicy(
                    # Legacy catalogs without a stored size pick up the
                    # current (possibly calibrated) default at load time.
                    target_size=entry.get("target_size")
                    or _fragments.DEFAULT_FRAGMENT_SIZE,
                    strategy=entry.get("strategy", "range"),
                    workers=entry.get("workers"),
                )
                pool._fragmented[name] = FragmentedBAT(
                    fragments,
                    positions if has_positions else None,
                    policy=policy,
                    name=name,
                )
            else:
                with np.load(directory / entry["file"], allow_pickle=True) as data:
                    pool._bats[name] = _restore_bat(entry, data, name=name)
        pool.oid_generator.bump_past(catalog.get("oid_next", 0) - 1)
        return pool


def _install_persisted_tuning(tuning: dict) -> None:
    """Reinstall calibrated fragment tuning found next to a catalog, so
    a restarted server skips the measurement pass.  Explicit
    environment overrides (``REPRO_FRAGMENT_SIZE`` /
    ``REPRO_PARALLEL_MIN_BUNS`` / ``REPRO_MERGE_FANOUT`` /
    ``REPRO_EXECUTOR_BACKEND`` / ``REPRO_PROCESS_MIN_BUNS`` /
    ``REPRO_JOIN_FANOUT`` / ``REPRO_JOIN_SPILL_BUNS``) win over
    persisted values, knob by knob."""
    import os

    fragment_size = (
        None if os.environ.get("REPRO_FRAGMENT_SIZE") else tuning.get("fragment_size")
    )
    parallel_min = (
        None
        if os.environ.get("REPRO_PARALLEL_MIN_BUNS")
        else tuning.get("parallel_min")
    )
    merge_fanout = (
        None if os.environ.get("REPRO_MERGE_FANOUT") else tuning.get("merge_fanout")
    )
    backend = (
        None if os.environ.get("REPRO_EXECUTOR_BACKEND") else tuning.get("backend")
    )
    process_min = (
        None
        if os.environ.get("REPRO_PROCESS_MIN_BUNS")
        else tuning.get("process_min")
    )
    join_fanout = (
        None if os.environ.get("REPRO_JOIN_FANOUT") else tuning.get("join_fanout")
    )
    join_spill = (
        None
        if os.environ.get("REPRO_JOIN_SPILL_BUNS")
        else tuning.get("join_spill")
    )
    values = (
        fragment_size,
        parallel_min,
        merge_fanout,
        backend,
        process_min,
        join_fanout,
        join_spill,
    )
    if any(value is not None for value in values):
        _fragments.set_default_tuning(
            fragment_size=fragment_size,
            parallel_min=parallel_min,
            merge_fanout=merge_fanout,
            backend=backend,
            process_min=process_min,
            join_fanout=join_fanout,
            join_spill=join_spill,
        )


# ----------------------------------------------------------------------
# Operator spill units
#
# Out-of-core operators (the grace hash join's partitioned build in
# :mod:`repro.monet.fragments`) park intermediate partitions on disk as
# npz units under a process-wide scratch directory, the BBP's transient
# sibling of the persistent per-fragment files above.  Units are
# same-process transients, so -- unlike catalog files -- object (str)
# arrays may ride npz's pickle path directly and no catalog entry or
# NIL marker translation is involved.
# ----------------------------------------------------------------------

_SPILL_ROOT: Optional[Path] = None
_SPILL_COUNTER = itertools.count()


def spill_directory() -> Path:
    """Scratch directory for operator spill units, created lazily and
    removed at interpreter exit."""
    global _SPILL_ROOT
    if _SPILL_ROOT is None:
        _SPILL_ROOT = Path(tempfile.mkdtemp(prefix="repro-bbp-spill-"))
        atexit.register(_cleanup_spill_directory)
    return _SPILL_ROOT


def _cleanup_spill_directory() -> None:
    global _SPILL_ROOT
    root, _SPILL_ROOT = _SPILL_ROOT, None
    if root is not None:
        shutil.rmtree(root, ignore_errors=True)


def new_spill_tag(prefix: str) -> str:
    """A unique (per process, per call) spill-unit tag."""
    return f"{prefix}-{os.getpid():x}-{next(_SPILL_COUNTER):06d}"


def write_spill_unit(tag: str, **arrays: np.ndarray) -> Path:
    """Write the named *arrays* as one npz spill unit; returns its path."""
    path = spill_directory() / f"{tag}.npz"
    np.savez(path, **arrays)
    return path


def read_spill_unit(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Load every array of a spill unit back into memory."""
    with np.load(path, allow_pickle=True) as data:
        return {key: data[key] for key in data.files}


def drop_spill_unit(path: Union[str, Path]) -> None:
    """Delete one spill unit (idempotent)."""
    Path(path).unlink(missing_ok=True)


#: NIL marker for persisted string columns.  No trailing NUL: numpy
#: unicode arrays strip trailing NULs on read, so the marker must not
#: end in one.
_STR_NIL_MARKER = "\x00NIL"


def _bat_entry(bat: BAT, filename: str) -> tuple:
    """Catalog entry + storable arrays for one BAT (or fragment)."""
    entry = {
        "file": filename,
        "htype": bat.htype,
        "ttype": bat.ttype,
        "hsorted": bat.hsorted,
        "tsorted": bat.tsorted,
        "hkey": bat.hkey,
        "tkey": bat.tkey,
        "hvoid": bat.head.is_void,
        "tvoid": bat.tail.is_void,
    }
    arrays = {}
    if bat.head.is_void:
        entry["hseqbase"] = bat.head.seqbase
        entry["count"] = len(bat)
    else:
        arrays["head"] = _storable(bat.head_values())
    if bat.tail.is_void:
        entry["tseqbase"] = bat.tail.seqbase
        entry["count"] = len(bat)
    else:
        arrays["tail"] = _storable(bat.tail_values())
    return entry, arrays


def _restore_bat(entry: dict, data, name: Optional[str]) -> BAT:
    head = _restore_column(entry, data, "h", "head")
    tail = _restore_column(entry, data, "t", "tail")
    return BAT(
        head,
        tail,
        hsorted=entry["hsorted"],
        tsorted=entry["tsorted"],
        hkey=entry["hkey"],
        tkey=entry["tkey"],
        name=name,
    )


def _storable(values: np.ndarray) -> np.ndarray:
    """Object (string) arrays are stored as unicode arrays; None becomes
    the reserved marker so NILs round-trip."""
    if values.dtype == np.dtype(object):
        return np.array(
            [_STR_NIL_MARKER if v is None else v for v in values], dtype=str
        )
    return values


def _restore_column(entry: dict, data, prefix: str, key: str):
    if entry[f"{prefix}void"]:
        return VoidColumn(entry[f"{prefix}seqbase"], entry["count"])
    atom_name = entry["htype"] if prefix == "h" else entry["ttype"]
    raw = data[key]
    if atom_name == "str":
        values = np.empty(len(raw), dtype=object)
        for position, item in enumerate(raw):
            text = str(item)
            values[position] = None if text == _STR_NIL_MARKER else text
        return Column("str", values)
    return Column(atom_name, raw.astype(atom(atom_name).dtype))
