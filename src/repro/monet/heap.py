"""String heap with dictionary encoding.

Monet stores variable-length atoms (strings) in a *heap* per BAT; equal
strings are stored once and tails hold offsets.  We reproduce the
behaviour with an explicit :class:`StringHeap` plus helpers to encode a
string column into an (offset-tail BAT, heap) pair and back.

The inverted index (:mod:`repro.ir.index`) uses this to intern the term
vocabulary: term strings live in one heap, and all posting BATs carry
compact integer term ids.

The same heap idea doubles as the *wire format* for shipping str
columns to worker processes (:mod:`repro.monet.shm`): a str column
flattens to a length-prefixed encoded heap -- one length word per
value (NIL marked) followed by the concatenated UTF-8 bytes.
:func:`encode_str_heap` / :func:`decode_str_heap` are the explicit
reference codec for that layout; the shm transport itself emits the
same layout through the C pickler (whose ``BINUNICODE`` frames are
length-prefixed UTF-8), which round-trips a million strings an order
of magnitude faster than any per-string Python loop can.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.monet.bat import BAT, Column, VoidColumn
from repro.monet.errors import BATError


class StringHeap:
    """Append-only interning dictionary: string <-> dense offset."""

    def __init__(self, strings: Optional[Iterable[str]] = None):
        self._strings: List[str] = []
        self._offsets: Dict[str, int] = {}
        if strings:
            for text in strings:
                self.intern(text)

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, text: str) -> bool:
        return text in self._offsets

    def intern(self, text: str) -> int:
        """Offset of *text*, inserting it when new."""
        if not isinstance(text, str):
            raise BATError(f"string heap can only intern str, got {type(text).__name__}")
        offset = self._offsets.get(text)
        if offset is None:
            offset = len(self._strings)
            self._strings.append(text)
            self._offsets[text] = offset
        return offset

    def lookup(self, text: str) -> Optional[int]:
        """Offset of *text*, or None when absent (no insertion)."""
        return self._offsets.get(text)

    def fetch(self, offset: int) -> str:
        """String stored at *offset*."""
        if not 0 <= offset < len(self._strings):
            raise BATError(f"heap offset {offset} out of range")
        return self._strings[offset]

    def strings(self) -> List[str]:
        """All interned strings in offset order (a copy)."""
        return list(self._strings)

    def as_bat(self) -> BAT:
        """[void-offset, str] view of the heap -- joinable like any BAT."""
        column = Column("str", np.array(self._strings, dtype=object))
        return BAT(VoidColumn(0, len(self._strings)), column, tkey=True)


def encode_column(values: Iterable[str], heap: Optional[StringHeap] = None) -> Tuple[BAT, StringHeap]:
    """Encode a string sequence as a [void, oid-offset] BAT over *heap*.

    Returns the encoded BAT and the (possibly shared) heap.
    """
    heap = heap or StringHeap()
    offsets = np.fromiter(
        (heap.intern(v) for v in values), dtype=np.int64
    )
    return BAT(VoidColumn(0, len(offsets)), Column("oid", offsets)), heap


def encode_str_heap(values: Iterable[Optional[str]]) -> Tuple[np.ndarray, bytes]:
    """Length-prefixed heap encoding of a str (object) column.

    Returns ``(lengths, data)``: one int64 byte length per value, in
    order, with ``-1`` marking a NIL (``None``), and the concatenated
    UTF-8 bytes of the non-NIL values.  This is the reference codec
    for the layout :mod:`repro.monet.shm` ships str columns in (the
    transport writes the equivalent frames with the C pickler for
    speed); it is also the portable export shape for anything that
    must read str columns without Python pickling."""
    lengths: List[int] = []
    chunks: List[bytes] = []
    for value in values:
        if value is None:
            lengths.append(-1)
        else:
            raw = value.encode("utf-8")
            lengths.append(len(raw))
            chunks.append(raw)
    return np.asarray(lengths, dtype=np.int64), b"".join(chunks)


def decode_str_heap(lengths: np.ndarray, data) -> np.ndarray:
    """Inverse of :func:`encode_str_heap`: an object array of str (and
    ``None`` for every ``-1`` length) from the flat heap pair.  *data*
    may be any bytes-like view (e.g. a shared-memory buffer)."""
    out = np.empty(len(lengths), dtype=object)
    at = 0
    for position, length in enumerate(np.asarray(lengths, dtype=np.int64).tolist()):
        if length < 0:
            out[position] = None
        else:
            out[position] = bytes(data[at: at + length]).decode("utf-8")
            at += length
    return out


def decode_bat(encoded: BAT, heap: StringHeap) -> BAT:
    """Inverse of :func:`encode_column`: restore the string tail."""
    offsets = encoded.tail_values()
    strings = np.empty(len(offsets), dtype=object)
    for position, offset in enumerate(offsets):
        strings[position] = heap.fetch(int(offset))
    return BAT(encoded.head, Column("str", strings), hsorted=encoded.hsorted,
               hkey=encoded.hkey)
