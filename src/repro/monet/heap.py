"""String heap with dictionary encoding.

Monet stores variable-length atoms (strings) in a *heap* per BAT; equal
strings are stored once and tails hold offsets.  We reproduce the
behaviour with an explicit :class:`StringHeap` plus helpers to encode a
string column into an (offset-tail BAT, heap) pair and back.

The inverted index (:mod:`repro.ir.index`) uses this to intern the term
vocabulary: term strings live in one heap, and all posting BATs carry
compact integer term ids.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.monet.bat import BAT, Column, VoidColumn
from repro.monet.errors import BATError


class StringHeap:
    """Append-only interning dictionary: string <-> dense offset."""

    def __init__(self, strings: Optional[Iterable[str]] = None):
        self._strings: List[str] = []
        self._offsets: Dict[str, int] = {}
        if strings:
            for text in strings:
                self.intern(text)

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, text: str) -> bool:
        return text in self._offsets

    def intern(self, text: str) -> int:
        """Offset of *text*, inserting it when new."""
        if not isinstance(text, str):
            raise BATError(f"string heap can only intern str, got {type(text).__name__}")
        offset = self._offsets.get(text)
        if offset is None:
            offset = len(self._strings)
            self._strings.append(text)
            self._offsets[text] = offset
        return offset

    def lookup(self, text: str) -> Optional[int]:
        """Offset of *text*, or None when absent (no insertion)."""
        return self._offsets.get(text)

    def fetch(self, offset: int) -> str:
        """String stored at *offset*."""
        if not 0 <= offset < len(self._strings):
            raise BATError(f"heap offset {offset} out of range")
        return self._strings[offset]

    def strings(self) -> List[str]:
        """All interned strings in offset order (a copy)."""
        return list(self._strings)

    def as_bat(self) -> BAT:
        """[void-offset, str] view of the heap -- joinable like any BAT."""
        column = Column("str", np.array(self._strings, dtype=object))
        return BAT(VoidColumn(0, len(self._strings)), column, tkey=True)


def encode_column(values: Iterable[str], heap: Optional[StringHeap] = None) -> Tuple[BAT, StringHeap]:
    """Encode a string sequence as a [void, oid-offset] BAT over *heap*.

    Returns the encoded BAT and the (possibly shared) heap.
    """
    heap = heap or StringHeap()
    offsets = np.fromiter(
        (heap.intern(v) for v in values), dtype=np.int64
    )
    return BAT(VoidColumn(0, len(offsets)), Column("oid", offsets)), heap


def decode_bat(encoded: BAT, heap: StringHeap) -> BAT:
    """Inverse of :func:`encode_column`: restore the string tail."""
    offsets = encoded.tail_values()
    strings = np.empty(len(offsets), dtype=object)
    for position, offset in enumerate(offsets):
        strings[position] = heap.fetch(int(offset))
    return BAT(encoded.head, Column("str", strings), hsorted=encoded.hsorted,
               hkey=encoded.hkey)
