"""Aggregation: scalar aggregates and Monet's grouped "pump" variants.

Scalar aggregates reduce a whole BAT tail to one value (``count``,
``sum``, ``max``, ``min``, ``avg``).  The *pump* variants (MIL writes
them ``{sum}``) aggregate per group: given a value BAT and a positionally
aligned grouping BAT ([head, group-oid], as produced by
:func:`repro.monet.groups.group`), they return [group-oid, aggregate].

The Mirror ranking query ``map[sum(THIS)]( map[getBL(...)](...) )``
compiles exactly to a ``{sum}`` pump over the belief BAT grouped by
document oid, which is why these operators are on the critical path of
every experiment in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.monet.bat import BAT, Column, VoidColumn
from repro.monet.errors import KernelError

# ----------------------------------------------------------------------
# Scalar aggregates
# ----------------------------------------------------------------------


def count(bat: BAT) -> int:
    """Number of BUNs."""
    return len(bat)


def sum_(bat: BAT) -> Any:
    """Sum of tail values (0 for an empty BAT, Monet convention)."""
    _require_numeric(bat, "sum")
    tails = bat.tail_values()
    if len(tails) == 0:
        return 0.0 if bat.ttype == "dbl" else 0
    total = tails.sum()
    return float(total) if bat.ttype == "dbl" else int(total)


def max_(bat: BAT) -> Any:
    """Maximum tail value; NIL (None) for an empty BAT."""
    _require_numeric(bat, "max")
    tails = bat.tail_values()
    if len(tails) == 0:
        return None
    value = tails.max()
    return float(value) if bat.ttype == "dbl" else int(value)


def min_(bat: BAT) -> Any:
    """Minimum tail value; NIL (None) for an empty BAT."""
    _require_numeric(bat, "min")
    tails = bat.tail_values()
    if len(tails) == 0:
        return None
    value = tails.min()
    return float(value) if bat.ttype == "dbl" else int(value)


def avg(bat: BAT) -> Optional[float]:
    """Arithmetic mean of tail values; NIL for an empty BAT."""
    _require_numeric(bat, "avg")
    tails = bat.tail_values()
    if len(tails) == 0:
        return None
    return float(tails.mean())


def _require_numeric(bat: BAT, op: str) -> None:
    if bat.ttype not in ("int", "dbl", "oid", "bit"):
        raise KernelError(f"{op} requires a numeric tail, got {bat.ttype}")


# ----------------------------------------------------------------------
# Pump (grouped) aggregates
# ----------------------------------------------------------------------


def _aligned_group_ids(values: BAT, grouping: BAT) -> np.ndarray:
    """Group ids positionally aligned with *values*.

    When both BATs have void heads over the same oid range the
    alignment is positional; otherwise the grouping is joined on head
    values (the general Monet behaviour).
    """
    if len(values) != len(grouping):
        raise KernelError(
            "pump aggregate requires the grouping to cover every value BUN "
            f"({len(values)} values vs {len(grouping)} group entries)"
        )
    if values.hdense and grouping.hdense:
        if values.head.seqbase != grouping.head.seqbase:
            raise KernelError("pump aggregate: misaligned void heads")
        return grouping.tail_values()
    value_heads = values.head_values()
    group_heads = grouping.head_values()
    if np.array_equal(value_heads, group_heads):
        return grouping.tail_values()
    # General alignment: join values.head -> grouping (vectorized; the
    # dict-per-element path survives only as the fallback for object
    # heads that numpy cannot order, e.g. str mixed with None).
    group_ids = grouping.tail_values()
    if group_heads.dtype == np.dtype(object) or value_heads.dtype == np.dtype(object):
        try:
            combined = np.concatenate((group_heads, value_heads))
            _, codes = np.unique(combined, return_inverse=True)
        except TypeError:
            return _aligned_group_ids_fallback(value_heads, group_heads, group_ids)
        codes = codes.astype(np.int64).ravel()
        group_codes = codes[: len(group_heads)]
        value_codes = codes[len(group_heads):]
    else:
        group_codes = group_heads
        value_codes = value_heads
    order = np.argsort(group_codes, kind="stable")
    sorted_codes = group_codes[order]
    hi = np.searchsorted(sorted_codes, value_codes, side="right")
    found = hi > 0
    slot = np.where(found, hi - 1, 0)
    found &= sorted_codes[slot] == value_codes
    if not found.all():
        missing = value_heads[int(np.nonzero(~found)[0][0])]
        raise KernelError(f"pump aggregate: head {missing!r} has no group")
    # side="right" - 1 lands on the *last* duplicate head, matching the
    # last-wins behaviour of the historical dict-based join.
    return group_ids[order[slot]].astype(np.int64)


def _aligned_group_ids_fallback(
    value_heads: np.ndarray, group_heads: np.ndarray, group_ids: np.ndarray
) -> np.ndarray:
    lookup = {h: g for h, g in zip(group_heads.tolist(), group_ids.tolist())}
    try:
        return np.asarray([lookup[h] for h in value_heads.tolist()], dtype=np.int64)
    except KeyError as exc:
        raise KernelError(f"pump aggregate: head {exc.args[0]!r} has no group") from None


def _n_groups(group_ids: np.ndarray, explicit: Optional[int]) -> int:
    if explicit is not None:
        return explicit
    return int(group_ids.max()) + 1 if len(group_ids) else 0


def grouped_sum(values: BAT, grouping: BAT, n_groups: Optional[int] = None) -> BAT:
    """{sum}: [group-oid, sum of values in that group].

    Groups without members get 0 (matching InQuery's treatment of
    absent evidence as contributing the default belief separately).
    """
    _require_numeric(values, "{sum}")
    ids = _aligned_group_ids(values, grouping)
    size = _n_groups(ids, n_groups)
    tails = values.tail_values().astype(np.float64)
    sums = np.bincount(ids, weights=tails, minlength=size) if size else np.zeros(0)
    if values.ttype == "int":
        return BAT(VoidColumn(0, size), Column("int", sums.astype(np.int64)))
    return BAT(VoidColumn(0, size), Column("dbl", sums))


def grouped_count(values: BAT, grouping: BAT, n_groups: Optional[int] = None) -> BAT:
    """{count}: [group-oid, member count]."""
    ids = _aligned_group_ids(values, grouping)
    size = _n_groups(ids, n_groups)
    counts = np.bincount(ids, minlength=size).astype(np.int64) if size else np.zeros(0, np.int64)
    return BAT(VoidColumn(0, size), Column("int", counts))


def grouped_max(values: BAT, grouping: BAT, n_groups: Optional[int] = None) -> BAT:
    """{max}: [group-oid, max]; empty groups get NIL."""
    return _grouped_extreme(values, grouping, n_groups, np.maximum, -np.inf)


def grouped_min(values: BAT, grouping: BAT, n_groups: Optional[int] = None) -> BAT:
    """{min}: [group-oid, min]; empty groups get NIL."""
    return _grouped_extreme(values, grouping, n_groups, np.minimum, np.inf)


def _grouped_extreme(values, grouping, n_groups, ufunc, identity) -> BAT:
    _require_numeric(values, "{extreme}")
    ids = _aligned_group_ids(values, grouping)
    size = _n_groups(ids, n_groups)
    out = np.full(size, identity, dtype=np.float64)
    with np.errstate(invalid="ignore"):  # NaN members poison their group
        ufunc.at(out, ids, values.tail_values().astype(np.float64))
    out[np.isinf(out)] = np.nan  # empty group -> dbl NIL
    if values.ttype == "int":
        ints = np.where(np.isnan(out), np.iinfo(np.int64).min, out).astype(np.int64)
        return BAT(VoidColumn(0, size), Column("int", ints))
    return BAT(VoidColumn(0, size), Column("dbl", out))


def grouped_avg(values: BAT, grouping: BAT, n_groups: Optional[int] = None) -> BAT:
    """{avg}: [group-oid, mean]; empty groups get NIL (nan)."""
    _require_numeric(values, "{avg}")
    ids = _aligned_group_ids(values, grouping)
    size = _n_groups(ids, n_groups)
    tails = values.tail_values().astype(np.float64)
    sums = np.bincount(ids, weights=tails, minlength=size)
    counts = np.bincount(ids, minlength=size)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = sums / counts
    return BAT(VoidColumn(0, size), Column("dbl", means))


def grouped_prod(values: BAT, grouping: BAT, n_groups: Optional[int] = None) -> BAT:
    """{prod}: [group-oid, product]; the physical operator behind the
    inference network's #and combinator (product of beliefs)."""
    _require_numeric(values, "{prod}")
    ids = _aligned_group_ids(values, grouping)
    size = _n_groups(ids, n_groups)
    tails = values.tail_values().astype(np.float64)
    # log-space product: safe because beliefs are positive; zeros handled
    # by masking.
    out = np.ones(size, dtype=np.float64)
    zero_mask = tails == 0.0
    if zero_mask.any():
        has_zero = np.zeros(size, dtype=bool)
        np.logical_or.at(has_zero, ids[zero_mask], True)
    else:
        has_zero = np.zeros(size, dtype=bool)
    positive = ~zero_mask & (tails > 0)
    logs = np.zeros(len(tails))
    logs[positive] = np.log(tails[positive])
    log_sums = np.bincount(ids[positive], weights=logs[positive], minlength=size)
    counts = np.bincount(ids, minlength=size)
    out = np.exp(log_sums)
    out[has_zero] = 0.0
    out[counts == 0] = 1.0
    negative = tails < 0
    if negative.any():
        # Track sign parity for negative factors.
        neg_counts = np.bincount(ids[negative], minlength=size)
        abs_logs = np.log(np.abs(tails[negative]))
        extra = np.bincount(ids[negative], weights=abs_logs, minlength=size)
        out = out * np.exp(extra)
        out[neg_counts % 2 == 1] *= -1.0
    return BAT(VoidColumn(0, size), Column("dbl", out))
