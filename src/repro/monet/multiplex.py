"""Multiplexed scalar operators: MIL's ``[op]`` family.

Monet lifts any scalar operation to whole BATs with the *multiplex*
construct: ``[+](a, b)`` adds the tails of two positionally aligned
BATs, ``[log](a)`` takes elementwise logarithms, ``[*](a, 0.4)``
broadcasts a constant.  The result keeps the head of the (first) BAT
argument.

The probabilistic operators of the Mirror DBMS's CONTREP structure are
implemented at the physical level exactly this way: belief computation
is a short pipeline of multiplexed arithmetic over the tf/df BATs (see
:mod:`repro.ir.beliefs`).

Alignment rule: all BAT arguments must have the same length and, when
their heads are void, the same seqbase.  (The Moa compiler only ever
emits aligned multiplexes; the check is a guard against compiler bugs.)
"""

from __future__ import annotations

from typing import Any, Dict, Union

import numpy as np

from repro.monet.bat import BAT, Column
from repro.monet.errors import KernelError

Operand = Union[BAT, int, float, bool, str]

#: op name -> (numpy implementation, result atom name or None=numeric-promote)
_UNARY: Dict[str, Any] = {
    "log": (np.log, "dbl"),
    "log10": (np.log10, "dbl"),
    "exp": (np.exp, "dbl"),
    "sqrt": (np.sqrt, "dbl"),
    "abs": (np.abs, None),
    "neg": (np.negative, None),
    "not": (lambda a: (~a.astype(bool)).astype(np.int8), "bit"),
    "dbl": (lambda a: a.astype(np.float64), "dbl"),
    "int": (lambda a: a.astype(np.int64), "int"),
    "isnil": (lambda a: np.isnan(a).astype(np.int8) if a.dtype == np.float64
              else np.zeros(len(a), dtype=np.int8), "bit"),
}

_BINARY: Dict[str, Any] = {
    "+": (np.add, None),
    "-": (np.subtract, None),
    "*": (np.multiply, None),
    "/": (lambda a, b: np.divide(np.asarray(a, dtype=np.float64), b), "dbl"),
    "min": (np.minimum, None),
    "max": (np.maximum, None),
    "pow": (np.power, "dbl"),
    "=": (lambda a, b: _eq(a, b), "bit"),
    "!=": (lambda a, b: (~_eq(a, b).astype(bool)).astype(np.int8), "bit"),
    "<": (lambda a, b: (a < b).astype(np.int8), "bit"),
    "<=": (lambda a, b: (a <= b).astype(np.int8), "bit"),
    ">": (lambda a, b: (a > b).astype(np.int8), "bit"),
    ">=": (lambda a, b: (a >= b).astype(np.int8), "bit"),
    "and": (lambda a, b: (a.astype(bool) & b.astype(bool)).astype(np.int8), "bit"),
    "or": (lambda a, b: (a.astype(bool) | b.astype(bool)).astype(np.int8), "bit"),
}

#: Spelled-out aliases accepted by the MIL front-end.
ALIASES = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
    "eq": "=",
    "ne": "!=",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
}


def _eq(a, b):
    if getattr(a, "dtype", None) == np.dtype(object) or getattr(b, "dtype", None) == np.dtype(object):
        if isinstance(b, np.ndarray):
            return np.fromiter((x == y for x, y in zip(a, b)), dtype=np.int8, count=len(a))
        return np.fromiter((x == b for x in a), dtype=np.int8, count=len(a))
    return (a == b).astype(np.int8)


def multiplex(op: str, *operands: Operand) -> BAT:
    """Apply scalar operation *op* elementwise across the operands.

    At least one operand must be a BAT; scalars broadcast.  The result
    BAT reuses the head of the first BAT operand.
    """
    op = ALIASES.get(op, op)
    bats = [x for x in operands if isinstance(x, BAT)]
    if not bats:
        raise KernelError("multiplex needs at least one BAT operand")
    length = len(bats[0])
    for other in bats[1:]:
        if len(other) != length:
            raise KernelError(
                f"multiplex [{op}]: operand length mismatch {length} vs {len(other)}"
            )
        if bats[0].hdense and other.hdense and bats[0].head.seqbase != other.head.seqbase:
            raise KernelError(f"multiplex [{op}]: void heads misaligned")
    arrays = [
        x.tail_values() if isinstance(x, BAT) else x
        for x in operands
    ]
    if op in _UNARY:
        if len(arrays) != 1:
            raise KernelError(f"[{op}] takes one operand, got {len(arrays)}")
        func, result_atom = _UNARY[op]
        result = func(_numericize(arrays[0]))
    elif op in _BINARY:
        if len(arrays) != 2:
            raise KernelError(f"[{op}] takes two operands, got {len(arrays)}")
        func, result_atom = _BINARY[op]
        if op in ("=", "!="):
            result = func(arrays[0], arrays[1])
        else:
            result = func(_numericize(arrays[0]), _numericize(arrays[1]))
    elif op == "ifthenelse":
        if len(arrays) != 3:
            raise KernelError("[ifthenelse] takes three operands")
        result_atom = None
        cond = np.asarray(arrays[0]).astype(bool)
        result = np.where(cond, arrays[1], arrays[2])
    else:
        raise KernelError(f"unknown multiplexed operation [{op}]")
    head = bats[0].head
    atom_name = result_atom or _infer_result_atom(result)
    result = np.asarray(result)
    if atom_name == "int" and result.dtype != np.int64:
        result = result.astype(np.int64)
    if atom_name == "dbl" and result.dtype != np.float64:
        result = result.astype(np.float64)
    return BAT(head, Column(atom_name, result), hsorted=bats[0].hsorted,
               hkey=bats[0].hkey)


def _numericize(value):
    if isinstance(value, np.ndarray) and value.dtype == np.dtype(object):
        raise KernelError("multiplex arithmetic on str tails is not defined")
    return value


def _infer_result_atom(result: np.ndarray) -> str:
    dtype = np.asarray(result).dtype
    if dtype == np.dtype(np.float64) or dtype.kind == "f":
        return "dbl"
    if dtype == np.dtype(np.int8):
        return "bit"
    if dtype.kind in ("i", "u", "b"):
        return "int"
    if dtype == np.dtype(object):
        return "str"
    raise KernelError(f"cannot infer result atom for dtype {dtype}")


def scalar_op(op: str, *operands):
    """The scalar (non-multiplexed) version of the same operator table,
    used by the MIL interpreter for plain expressions like ``0.4 + x``."""
    op = ALIASES.get(op, op)
    if op in _UNARY and len(operands) == 1:
        func, result_atom = _UNARY[op]
        value = func(np.asarray([operands[0]]))[0]
    elif op in _BINARY and len(operands) == 2:
        func, result_atom = _BINARY[op]
        if op in ("=", "!="):
            equal = operands[0] == operands[1]
            return bool(equal) if op == "=" else not bool(equal)
        value = func(np.asarray([operands[0]]), np.asarray([operands[1]]))[0]
    elif op == "ifthenelse" and len(operands) == 3:
        return operands[1] if operands[0] else operands[2]
    else:
        raise KernelError(f"unknown scalar operation {op} / arity {len(operands)}")
    if result_atom == "bit":
        return bool(value)
    if isinstance(value, (np.floating, float)):
        return float(value)
    if isinstance(value, (np.integer, int)):
        return int(value)
    return value
