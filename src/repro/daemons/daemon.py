"""The daemon abstraction and the concrete daemons of section 5.1.

"The notion of a 'daemon' abstracts from the various techniques for
meta data extraction and query formulation."  Every daemon:

* registers itself with the ORB under a logical name;
* announces itself to the data dictionary (name, kind, what it
  produces);
* exposes ``process``-style methods the library orchestrator invokes
  *through the ORB proxy* -- a daemon never touches the metadata
  database directly.

Concrete daemons (matching section 5.1's inventory):

* :class:`SegmentationDaemon` -- segments images fetched from the
  media server;
* :class:`FeatureDaemon` -- one per feature extractor; the demo runs
  two colour and four texture instances;
* :class:`ClusteringDaemon` -- wraps AutoClass over a feature space;
* :class:`ThesaurusDaemon` -- builds the association thesaurus and
  serves query formulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.clustering.autoclass import AutoClass
from repro.clustering.kmeans import KMeans
from repro.daemons.dictionary import DaemonRegistration, DataDictionary
from repro.daemons.mediaserver import MediaServer
from repro.daemons.orb import Orb, RemoteProxy
from repro.multimedia.features import FEATURE_EXTRACTORS
from repro.multimedia.image import Image
from repro.multimedia.segmentation import grid_segment, region_merge_segment
from repro.thesaurus.assoc import AssociationThesaurus
from repro.thesaurus.cooccurrence import CooccurrenceCounts


class Daemon:
    """Base daemon: ORB + dictionary registration."""

    kind = "generic"
    produces = "nothing"

    def __init__(self, name: str):
        self.name = name
        self.processed = 0

    def attach(
        self, orb: Orb, dictionary: Optional[DataDictionary] = None
    ) -> RemoteProxy:
        """Register with the federation; returns the ORB proxy."""
        proxy = orb.register(self.name, self)
        if dictionary is not None:
            dictionary.register_daemon(
                DaemonRegistration(
                    name=self.name,
                    kind=self.kind,
                    produces=self.produces,
                    orb_name=self.name,
                )
            )
        return proxy

    def status(self) -> Dict[str, object]:
        """Health/status info (remotely callable)."""
        return {"name": self.name, "kind": self.kind, "processed": self.processed}


class SegmentationDaemon(Daemon):
    """Fetches an image from the media server and segments it."""

    kind = "segmentation"
    produces = "image segments (bounding boxes + pixel blocks)"

    def __init__(
        self,
        name: str = "segmenter",
        media: Optional[MediaServer] = None,
        *,
        method: str = "grid",
        rows: int = 2,
        cols: int = 2,
    ):
        super().__init__(name)
        if method not in ("grid", "region"):
            raise ValueError("segmentation method must be 'grid' or 'region'")
        self.media = media
        self.method = method
        self.rows = rows
        self.cols = cols

    def segment_url(self, url: str) -> List[Tuple[int, int, int, int]]:
        """Segment the image stored at *url*; returns bounding boxes
        (pixel payloads stay on this side -- only metadata crosses the
        wire, the Mirror separation)."""
        if self.media is None:
            raise RuntimeError(f"daemon {self.name} has no media server")
        image = self.media.get_image(url)
        return [s.bbox for s in self.segment(image)]

    def segment(self, image: Image):
        self.processed += 1
        if self.method == "grid":
            return grid_segment(image, self.rows, self.cols)
        return region_merge_segment(image)


class FeatureDaemon(Daemon):
    """One feature-extraction daemon (colour histogram, Gabor, ...)."""

    kind = "feature"

    def __init__(
        self,
        extractor_name: str,
        media: Optional[MediaServer] = None,
        name: Optional[str] = None,
    ):
        if extractor_name not in FEATURE_EXTRACTORS:
            raise KeyError(
                f"unknown extractor {extractor_name!r}; "
                f"known: {sorted(FEATURE_EXTRACTORS)}"
            )
        super().__init__(name or f"feature-{extractor_name}")
        self.extractor_name = extractor_name
        self.extractor = FEATURE_EXTRACTORS[extractor_name]
        self.produces = f"{extractor_name} feature vectors"
        self.media = media

    def extract(self, image: Image) -> np.ndarray:
        self.processed += 1
        return self.extractor(image)

    def extract_segments(self, image: Image, bboxes: Sequence[Tuple[int, int, int, int]]) -> np.ndarray:
        """Feature matrix (n_segments, d) for the given regions."""
        self.processed += 1
        rows = [
            self.extractor(image.crop(top, left, bottom, right))
            for top, left, bottom, right in bboxes
        ]
        return np.stack(rows) if rows else np.zeros((0, 1))

    def extract_url(self, url: str, bboxes: Sequence[Tuple[int, int, int, int]]) -> np.ndarray:
        if self.media is None:
            raise RuntimeError(f"daemon {self.name} has no media server")
        return self.extract_segments(self.media.get_image(url), bboxes)


class ClusteringDaemon(Daemon):
    """Clusters one feature space with AutoClass (or k-means)."""

    kind = "clustering"
    produces = "cluster models over feature spaces"

    def __init__(
        self,
        name: str = "autoclass",
        *,
        algorithm: str = "autoclass",
        min_classes: int = 2,
        max_classes: int = 10,
        seed: int = 0,
    ):
        super().__init__(name)
        if algorithm not in ("autoclass", "kmeans"):
            raise ValueError("algorithm must be 'autoclass' or 'kmeans'")
        self.algorithm = algorithm
        self.min_classes = min_classes
        self.max_classes = max_classes
        self.seed = seed

    def cluster(self, data: np.ndarray):
        """Fit and return a model exposing ``predict``/``n_classes``."""
        self.processed += 1
        data = np.asarray(data, dtype=np.float64)
        if self.algorithm == "autoclass":
            return AutoClass(
                self.min_classes, self.max_classes, seed=self.seed
            ).fit(data)
        return KMeans(self.max_classes, seed=self.seed).fit(data)


class ThesaurusDaemon(Daemon):
    """Builds the association thesaurus; serves query formulation."""

    kind = "thesaurus"
    produces = "word <-> cluster associations (dual coding)"

    def __init__(self, name: str = "thesaurus"):
        super().__init__(name)
        self.thesaurus: Optional[AssociationThesaurus] = None

    def build(
        self, documents: Sequence[Tuple[Sequence[str], Sequence[str]]]
    ) -> int:
        """Build from (text-terms, cluster-terms) document pairs;
        returns the number of associations recorded."""
        self.processed += 1
        counts = CooccurrenceCounts.from_documents(documents)
        self.thesaurus = AssociationThesaurus(counts)
        return len(counts.joint)

    def formulate(self, words: Sequence[str], per_word: int = 3) -> List[str]:
        """Query formulation: text words -> visual-cluster terms."""
        if self.thesaurus is None:
            raise RuntimeError("thesaurus not built yet")
        return self.thesaurus.expand(list(words), per_word=per_word)

    def reinforce(self, word: str, cluster: str, factor: float) -> None:
        if self.thesaurus is None:
            raise RuntimeError("thesaurus not built yet")
        self.thesaurus.reinforce(word, cluster, factor)
