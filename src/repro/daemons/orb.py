"""A CORBA-like Object Request Broker, simulated in-process.

What the simulation preserves (and what the Figure-1 experiment
measures):

* **naming service** -- daemons register under logical names; clients
  resolve names to proxies and never hold direct references;
* **marshalling boundary** -- every argument and result crosses the
  "wire" as a deep copy, so no accidental shared mutable state can leak
  between parties (this is what makes the daemons genuinely
  independent, the paper's architectural point);
* **accounting** -- calls and marshalled byte volume are counted per
  object, giving the E1 benchmark its traffic numbers.

The broker is thread-safe: one lock guards the name registry and the
call log, so daemons may register/unregister and clients may invoke
concurrently (the query service registers itself as a daemon and its
sessions run on many threads).  Method dispatch itself happens outside
the lock -- a slow daemon method never blocks the naming service -- so
the *target objects* must handle their own concurrency.

What it does not do: real sockets or IDL -- which the paper does not
evaluate.
"""

from __future__ import annotations

import copy
import pickle
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional


class OrbError(Exception):
    """Name resolution or invocation failure."""


@dataclass
class CallRecord:
    """One logged remote invocation."""

    object_name: str
    method: str
    request_bytes: int
    reply_bytes: int


class Orb:
    """The broker: registry + naming + invocation with accounting."""

    def __init__(self):
        self._objects: Dict[str, Any] = {}
        self.calls: List[CallRecord] = []
        self._lock = threading.RLock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Naming service
    # ------------------------------------------------------------------
    def register(self, name: str, obj: Any) -> "RemoteProxy":
        """Bind *obj* under *name*; returns the proxy clients should use."""
        if not name:
            raise OrbError("object name must be non-empty")
        with self._lock:
            if name in self._objects:
                raise OrbError(f"name {name!r} already bound")
            self._objects[name] = obj
        return RemoteProxy(self, name)

    def unregister(self, name: str) -> None:
        with self._lock:
            if name not in self._objects:
                raise OrbError(f"name {name!r} not bound")
            del self._objects[name]

    def resolve(self, name: str) -> "RemoteProxy":
        """Name -> proxy (CORBA ``resolve_initial_references`` analogue)."""
        with self._lock:
            if name not in self._objects:
                raise OrbError(
                    f"cannot resolve {name!r}; bound names: "
                    f"{sorted(self._objects)}"
                )
        return RemoteProxy(self, name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._objects)

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def invoke(self, name: str, method: str, args: tuple, kwargs: dict) -> Any:
        """Marshal, dispatch, marshal back.  The registry is consulted
        under the lock but the target method runs outside it, so
        concurrent invocations of independent daemons proceed in
        parallel."""
        with self._lock:
            try:
                target = self._objects[name]
            except KeyError:
                raise OrbError(f"object {name!r} vanished") from None
        bound = getattr(target, method, None)
        if bound is None or not callable(bound):
            raise OrbError(f"{name!r} has no method {method!r}")
        marshalled_args, request_bytes = _marshal((args, kwargs))
        m_args, m_kwargs = marshalled_args
        result = bound(*m_args, **m_kwargs)
        marshalled_result, reply_bytes = _marshal(result)
        with self._lock:
            self.calls.append(
                CallRecord(name, method, request_bytes, reply_bytes)
            )
        return marshalled_result

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def call_count(self, name: Optional[str] = None) -> int:
        with self._lock:
            if name is None:
                return len(self.calls)
            return sum(1 for c in self.calls if c.object_name == name)

    def traffic_bytes(self) -> int:
        with self._lock:
            return sum(c.request_bytes + c.reply_bytes for c in self.calls)

    def reset_accounting(self) -> None:
        with self._lock:
            self.calls.clear()


class RemoteProxy:
    """Client-side stub: attribute access returns remote-invoking
    callables (a dynamic-invocation-interface CORBA stub)."""

    __slots__ = ("_orb", "_name")

    def __init__(self, orb: Orb, name: str):
        self._orb = orb
        self._name = name

    @property
    def object_name(self) -> str:
        return self._name

    def __getattr__(self, method: str) -> Callable[..., Any]:
        if method.startswith("_"):
            raise AttributeError(method)

        def invoke(*args, **kwargs):
            return self._orb.invoke(self._name, method, args, kwargs)

        invoke.__name__ = method
        return invoke

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemoteProxy({self._name!r})"


def _marshal(value: Any):
    """Deep-copy *value* across the simulated wire and measure its
    pickled size (the traffic accounting unit).  Falls back to deepcopy
    sizing when a value is not picklable."""
    try:
        data = pickle.dumps(value)
        return pickle.loads(data), len(data)
    except Exception:
        return copy.deepcopy(value), 0
