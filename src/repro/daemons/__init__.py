"""The open distributed architecture of Figure 1.

"We use an open distributed architecture instead of a monolithic
database system. ...  The notion of a 'daemon' abstracts from the
various techniques for meta data extraction and query formulation.
Using CORBA, we allow distribution of operations, establishing
independence between the management of meta data and the parties that
create these meta data."  (Mirror paper, section 4.)

Offline we cannot run a real ORB; :mod:`repro.daemons.orb` simulates
one faithfully enough to preserve the property under study --
*location-transparent invocation through marshalled boundaries*:
arguments and results are deep-copied across every call (no shared
mutable state between daemon and caller) and every hop is accounted.

* :mod:`repro.daemons.orb` -- object registry, naming service, proxies;
* :mod:`repro.daemons.daemon` -- the daemon abstraction + the concrete
  extraction daemons of section 5.1;
* :mod:`repro.daemons.dictionary` -- the (distributed) data dictionary;
* :mod:`repro.daemons.mediaserver` -- the media (web) server.
"""

from repro.daemons.daemon import (
    ClusteringDaemon,
    Daemon,
    FeatureDaemon,
    SegmentationDaemon,
    ThesaurusDaemon,
)
from repro.daemons.dictionary import DataDictionary
from repro.daemons.mediaserver import MediaServer
from repro.daemons.orb import Orb, RemoteProxy

__all__ = [
    "Orb",
    "RemoteProxy",
    "Daemon",
    "SegmentationDaemon",
    "FeatureDaemon",
    "ClusteringDaemon",
    "ThesaurusDaemon",
    "DataDictionary",
    "MediaServer",
]
