"""The media server ("the media server is a web server").

Stores raw media bytes by URL.  The web robot PUTs crawled images; the
segmentation and feature daemons GET them by URL -- media never travels
through the metadata database, which only holds content
*representations* (the Mirror separation of media and metadata).
"""

from __future__ import annotations

from typing import Dict, List

from repro.multimedia.image import Image


class MediaNotFound(KeyError):
    """GET for an unknown URL."""


class MediaServer:
    """An in-memory URL -> bytes store with image convenience wrappers."""

    def __init__(self):
        self._store: Dict[str, bytes] = {}
        self.get_count = 0
        self.put_count = 0

    # ------------------------------------------------------------------
    def put(self, url: str, data: bytes) -> None:
        """Store *data* under *url* (overwrites, like an HTTP PUT)."""
        if not url:
            raise ValueError("URL must be non-empty")
        self._store[url] = bytes(data)
        self.put_count += 1

    def get(self, url: str) -> bytes:
        """Fetch the bytes stored under *url*."""
        self.get_count += 1
        try:
            return self._store[url]
        except KeyError:
            raise MediaNotFound(url) from None

    def exists(self, url: str) -> bool:
        return url in self._store

    def urls(self) -> List[str]:
        return sorted(self._store)

    def __len__(self) -> int:
        return len(self._store)

    # ------------------------------------------------------------------
    def put_image(self, url: str, image: Image) -> None:
        """Store an image as PPM bytes."""
        self.put(url, image.to_ppm())

    def get_image(self, url: str) -> Image:
        """Fetch and decode an image stored with :meth:`put_image`."""
        return Image.from_ppm(self.get(url))
