"""The (distributed) data dictionary of Figure 1.

Tracks what exists in the federation: collection schemas (as Moa DDL),
which daemons are registered and what they produce, and which BATs a
collection occupies in the metadata database.  Daemons consult the
dictionary to discover work ("establishing independence between the
management of meta data and the parties that create these meta data").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.moa.ddl import parse_define, render_define
from repro.moa.types import MoaType


class DictionaryError(Exception):
    """Unknown schema / daemon, or conflicting registration."""


@dataclass
class DaemonRegistration:
    """What the dictionary knows about one daemon."""

    name: str
    kind: str  # "segmentation" | "feature" | "clustering" | "thesaurus" | ...
    produces: str  # description of the representation it creates
    orb_name: str  # name bound in the ORB


class DataDictionary:
    """Schema + daemon registry for the digital library federation."""

    def __init__(self):
        self._schemas: Dict[str, MoaType] = {}
        self._daemons: Dict[str, DaemonRegistration] = {}

    # ------------------------------------------------------------------
    # Schemas
    # ------------------------------------------------------------------
    def define(self, ddl: str) -> str:
        """Record a ``define Name as ...;`` statement; returns the name."""
        name, ty = parse_define(ddl)
        self._schemas[name] = ty
        return name

    def define_type(self, name: str, ty: MoaType) -> None:
        self._schemas[name] = ty

    def schema(self, name: str) -> MoaType:
        try:
            return self._schemas[name]
        except KeyError:
            raise DictionaryError(f"no schema for collection {name!r}") from None

    def has_schema(self, name: str) -> bool:
        return name in self._schemas

    def schemas(self) -> Dict[str, MoaType]:
        return dict(self._schemas)

    def ddl(self) -> str:
        """All schemas rendered back to DDL text."""
        return "\n".join(
            render_define(name, ty) for name, ty in sorted(self._schemas.items())
        )

    # ------------------------------------------------------------------
    # Daemons
    # ------------------------------------------------------------------
    def register_daemon(self, registration: DaemonRegistration) -> None:
        if registration.name in self._daemons:
            raise DictionaryError(
                f"daemon {registration.name!r} already registered"
            )
        self._daemons[registration.name] = registration

    def daemon(self, name: str) -> DaemonRegistration:
        try:
            return self._daemons[name]
        except KeyError:
            raise DictionaryError(f"no daemon named {name!r}") from None

    def daemons(self, kind: Optional[str] = None) -> List[DaemonRegistration]:
        out = sorted(self._daemons.values(), key=lambda d: d.name)
        if kind is not None:
            out = [d for d in out if d.kind == kind]
        return out
