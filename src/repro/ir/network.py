"""Inference network assembly and evaluation.

A query inference network (Turtle & Croft) is a DAG: document nodes
feed concept (term) nodes, which feed query operator nodes, ending in a
single information-need node.  Evaluating the network for all documents
at once yields a score vector -- the set-at-a-time evaluation that the
Mirror DBMS performs inside the database.

:class:`QueryNode` trees are built directly or parsed from InQuery
``#``-syntax by :mod:`repro.ir.queries`; evaluation happens against an
:class:`repro.ir.index.InvertedIndex`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.ir import operators
from repro.ir.beliefs import BeliefParameters, DEFAULT_PARAMETERS
from repro.ir.index import InvertedIndex


@dataclass
class QueryNode:
    """A node in the query network.

    ``kind`` is one of ``term``, ``sum``, ``wsum``, ``and``, ``or``,
    ``not``, ``max``.  Term nodes carry the term text; operator nodes
    carry children (and weights, for wsum).
    """

    kind: str
    term: Optional[str] = None
    children: List["QueryNode"] = field(default_factory=list)
    weights: List[float] = field(default_factory=list)

    def __post_init__(self):
        if self.kind == "term":
            if not self.term:
                raise ValueError("term node needs a term")
        elif self.kind == "not":
            if len(self.children) != 1:
                raise ValueError("#not takes exactly one child")
        elif self.kind == "wsum":
            if len(self.children) != len(self.weights) or not self.children:
                raise ValueError("#wsum needs one weight per child")
        elif self.kind in ("sum", "and", "or", "max"):
            if not self.children:
                raise ValueError(f"#{self.kind} needs at least one child")
        else:
            raise ValueError(f"unknown query node kind {self.kind!r}")

    # ------------------------------------------------------------------
    def terms(self) -> List[str]:
        """All term leaves, left to right (with duplicates)."""
        if self.kind == "term":
            return [self.term]  # type: ignore[list-item]
        out: List[str] = []
        for child in self.children:
            out.extend(child.terms())
        return out

    def render(self) -> str:
        """InQuery #-syntax rendering."""
        if self.kind == "term":
            return self.term  # type: ignore[return-value]
        if self.kind == "wsum":
            inner = " ".join(
                f"{w:g} {c.render()}" for w, c in zip(self.weights, self.children)
            )
            return f"#wsum({inner})"
        inner = " ".join(c.render() for c in self.children)
        return f"#{self.kind}({inner})"


def term(text: str) -> QueryNode:
    return QueryNode("term", term=text)


def sum_node(*children: QueryNode) -> QueryNode:
    return QueryNode("sum", children=list(children))


def wsum(pairs: Sequence[tuple]) -> QueryNode:
    weights = [float(w) for w, _ in pairs]
    children = [c for _, c in pairs]
    return QueryNode("wsum", children=children, weights=weights)


def and_node(*children: QueryNode) -> QueryNode:
    return QueryNode("and", children=list(children))


def or_node(*children: QueryNode) -> QueryNode:
    return QueryNode("or", children=list(children))


def not_node(child: QueryNode) -> QueryNode:
    return QueryNode("not", children=[child])


def max_node(*children: QueryNode) -> QueryNode:
    return QueryNode("max", children=list(children))


class InferenceNetwork:
    """Evaluator binding a query network to a document collection."""

    def __init__(
        self,
        index: InvertedIndex,
        params: BeliefParameters = DEFAULT_PARAMETERS,
    ):
        self.index = index
        self.params = params

    def evaluate(self, node: QueryNode) -> np.ndarray:
        """Score vector (one belief per document) for *node*."""
        if node.kind == "term":
            return self.index.term_beliefs(node.term, self.params)  # type: ignore[arg-type]
        child_scores = [self.evaluate(child) for child in node.children]
        if node.kind == "sum":
            return operators.array_sum(child_scores)
        if node.kind == "wsum":
            return operators.array_wsum(child_scores, node.weights)
        if node.kind == "and":
            return operators.array_and(child_scores)
        if node.kind == "or":
            return operators.array_or(child_scores)
        if node.kind == "not":
            return operators.array_not(child_scores[0])
        if node.kind == "max":
            return operators.array_max(child_scores)
        raise ValueError(f"unknown node kind {node.kind!r}")

    def rank(self, node: QueryNode, k: Optional[int] = None) -> List[tuple]:
        """Top-*k* (doc-id, score) pairs, best first; ties by doc id."""
        scores = self.evaluate(node)
        order = np.lexsort((np.arange(len(scores)), -scores))
        if k is not None:
            order = order[:k]
        return [(int(i), float(scores[i])) for i in order]
