"""The Porter stemming algorithm (Porter, 1980), implemented from
scratch.

InQuery -- the system whose retrieval model the Mirror DBMS adopts --
normalizes terms with the Porter stemmer, so the CONTREP text pipeline
does the same.  The implementation follows the five-step description of
the original paper ("An algorithm for suffix stripping", Program 14(3))
including the m-measure conditions; it matches the reference behaviour
on the classic examples (see ``tests/ir/test_porter.py``).
"""

from __future__ import annotations

_VOWELS = set("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """The m-measure: number of VC sequences in *stem*."""
    m = 0
    previous_vowel = False
    for i in range(len(stem)):
        consonant = _is_consonant(stem, i)
        if consonant and previous_vowel:
            m += 1
        previous_vowel = not consonant
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """*o of the paper: stem ends consonant-vowel-consonant where the
    final consonant is not w, x or y."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace(word: str, suffix: str, replacement: str) -> str:
    return word[: len(word) - len(suffix)] + replacement


def _step1a(word: str) -> str:
    if word.endswith("sses"):
        return _replace(word, "sses", "ss")
    if word.endswith("ies"):
        return _replace(word, "ies", "i")
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    flag = False
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        word = word[:-2]
        flag = True
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        word = word[:-3]
        flag = True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2 = [
    ("ational", "ate"),
    ("tional", "tion"),
    ("enci", "ence"),
    ("anci", "ance"),
    ("izer", "ize"),
    ("abli", "able"),
    ("alli", "al"),
    ("entli", "ent"),
    ("eli", "e"),
    ("ousli", "ous"),
    ("ization", "ize"),
    ("ation", "ate"),
    ("ator", "ate"),
    ("alism", "al"),
    ("iveness", "ive"),
    ("fulness", "ful"),
    ("ousness", "ous"),
    ("aliti", "al"),
    ("iviti", "ive"),
    ("biliti", "ble"),
]

_STEP3 = [
    ("icate", "ic"),
    ("ative", ""),
    ("alize", "al"),
    ("iciti", "ic"),
    ("ical", "ic"),
    ("ful", ""),
    ("ness", ""),
]

_STEP4 = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def _apply_rules(word: str, rules, min_measure: int) -> str:
    for suffix, replacement in rules:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > min_measure - 1:
                return stem + replacement
            return word
    return word


def _step4(word: str) -> str:
    if word.endswith("ion"):
        stem = word[:-3]
        if stem and stem[-1] in "st" and _measure(stem) > 1:
            return stem
        return word
    for suffix in _STEP4:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    return word


def _step5a(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1:
            return stem
        if m == 1 and not _ends_cvc(stem):
            return stem
    return word


def _step5b(word: str) -> str:
    if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
        return word[:-1]
    return word


def stem(word: str) -> str:
    """Porter-stem *word* (expects a lowercase alphabetic token).

    Words of length <= 2 are returned unchanged, per the original
    algorithm.
    """
    if len(word) <= 2:
        return word
    word = _step1a(word)
    word = _step1b(word)
    word = _step1c(word)
    word = _apply_rules(word, _STEP2, 1)
    word = _apply_rules(word, _STEP3, 1)
    word = _step4(word)
    word = _step5a(word)
    word = _step5b(word)
    return word
