"""Parser for InQuery-style structured queries.

Syntax::

    query   := node+                       -- implicit #sum over several
    node    := '#' IDENT '(' node+ ')'     -- operator node
             | NUMBER node                 -- weighted child (inside #wsum)
             | WORD                        -- term leaf

Examples::

    sunset beach                        -> #sum(sunset beach)
    #and(red car)                       -> conjunction
    #wsum(2 sunset 1 #or(sea ocean))    -> weighted sum

Terms are analyzed (stopped/stemmed) with the CONTREP text pipeline so
user queries match the indexed vocabulary.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.ir.network import QueryNode
from repro.ir.tokenize import analyze

_TOKEN_RE = re.compile(r"#[a-z]+|\(|\)|[^\s()#]+")

_OPERATORS = {"#sum", "#wsum", "#and", "#or", "#not", "#max"}


class QueryParseError(ValueError):
    """Raised for malformed #-queries."""


def _tokenize(text: str) -> List[str]:
    return _TOKEN_RE.findall(text.strip())


class _Parser:
    def __init__(self, tokens: List[str], stemming: bool):
        self.tokens = tokens
        self.position = 0
        self.stemming = stemming

    def peek(self) -> Optional[str]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> str:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def parse_nodes(self, stop_at_paren: bool) -> List[QueryNode]:
        nodes: List[QueryNode] = []
        while True:
            token = self.peek()
            if token is None:
                if stop_at_paren:
                    raise QueryParseError("unbalanced parentheses")
                return nodes
            if token == ")":
                if not stop_at_paren:
                    raise QueryParseError("unexpected ')'")
                return nodes
            nodes.append(self.parse_node())

    def parse_node(self) -> QueryNode:
        token = self.advance()
        if token in _OPERATORS:
            if self.peek() != "(":
                raise QueryParseError(f"{token} needs '('")
            self.advance()
            if token == "#wsum":
                node = self._parse_wsum()
            else:
                children = self.parse_nodes(stop_at_paren=True)
                if not children:
                    raise QueryParseError(f"{token} needs children")
                node = QueryNode(token[1:], children=children)
            if self.peek() != ")":
                raise QueryParseError("unbalanced parentheses")
            self.advance()
            return node
        if token.startswith("#"):
            raise QueryParseError(f"unknown operator {token}")
        if token == "(":
            raise QueryParseError("bare '(' without operator")
        return self._term(token)

    def _parse_wsum(self) -> QueryNode:
        pairs: List[Tuple[float, QueryNode]] = []
        while self.peek() not in (")", None):
            weight_token = self.advance()
            try:
                weight = float(weight_token)
            except ValueError:
                raise QueryParseError(
                    f"#wsum expects weight before child, got {weight_token!r}"
                ) from None
            if self.peek() in (")", None):
                raise QueryParseError("#wsum weight without child")
            pairs.append((weight, self.parse_node()))
        if not pairs:
            raise QueryParseError("#wsum needs children")
        return QueryNode(
            "wsum",
            children=[c for _, c in pairs],
            weights=[w for w, _ in pairs],
        )

    def _term(self, token: str) -> QueryNode:
        analyzed = analyze(token, stemming=self.stemming)
        text = analyzed[0] if analyzed else token.lower()
        return QueryNode("term", term=text)


def parse_structured_query(text: str, *, stemming: bool = True) -> QueryNode:
    """Parse *text* into a query network; several top-level nodes are
    wrapped in an implicit #sum."""
    tokens = _tokenize(text)
    if not tokens:
        raise QueryParseError("empty query")
    parser = _Parser(tokens, stemming)
    nodes = parser.parse_nodes(stop_at_paren=False)
    if not nodes:
        raise QueryParseError("empty query")
    if len(nodes) == 1:
        return nodes[0]
    return QueryNode("sum", children=nodes)
