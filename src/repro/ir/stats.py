"""Global collection statistics: the ``stats`` parameter of the paper's
ranking queries.

"... and stats is a structure that represents global statistics of the
whole collection" (Mirror paper, section 3).  For the inference network
belief functions we need, per CONTREP attribute:

* ``document_count`` (N),
* ``document_frequency`` per term (df),
* ``average_document_length`` (avgdl),
* optionally ``collection_frequency`` (cf, for diagnostics).

Statistics can be built from raw term lists, from an
:class:`repro.ir.index.InvertedIndex`, or gathered from the CONTREP
BATs living in a buffer pool (:meth:`CollectionStats.from_pool`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping

import numpy as np

from repro.monet.bat import BAT, bat_from_pairs
from repro.monet.bbp import BATBufferPool


@dataclass
class CollectionStats:
    """Immutable snapshot of collection-wide term statistics."""

    document_count: int
    average_document_length: float
    document_frequency: Dict[str, int] = field(default_factory=dict)
    collection_frequency: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_documents(cls, documents: Iterable[Mapping[str, int]]) -> "CollectionStats":
        """Build from per-document term-frequency mappings."""
        df: Dict[str, int] = {}
        cf: Dict[str, int] = {}
        total_length = 0
        count = 0
        for doc in documents:
            count += 1
            total_length += sum(doc.values())
            for term, tf in doc.items():
                df[term] = df.get(term, 0) + 1
                cf[term] = cf.get(term, 0) + tf
        avgdl = (total_length / count) if count else 0.0
        return cls(count, avgdl, df, cf)

    @classmethod
    def from_pool(cls, pool: BATBufferPool, prefix: str) -> "CollectionStats":
        """Gather statistics from the CONTREP BATs under *prefix*
        (``<collection>.<attr>``); see the CONTREP mapper for layout."""
        pool.lookup(f"{prefix}.owner")  # existence check: the mapper always writes it
        term = pool.lookup(f"{prefix}.term")
        tf = pool.lookup(f"{prefix}.tf")
        doclen = pool.lookup(f"{prefix}.doclen")
        document_count = len(doclen)
        lengths = doclen.tail_values()
        avgdl = float(lengths.mean()) if document_count else 0.0
        df: Dict[str, int] = {}
        cf: Dict[str, int] = {}
        terms = term.tail_values()
        tfs = tf.tail_values()
        for i in range(len(terms)):
            t = terms[i]
            df[t] = df.get(t, 0) + 1
            cf[t] = cf.get(t, 0) + int(tfs[i])
        return cls(document_count, avgdl, df, cf)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def df(self, term: str) -> int:
        """Document frequency of *term* (0 when unseen)."""
        return self.document_frequency.get(term, 0)

    def cf(self, term: str) -> int:
        """Collection frequency of *term* (0 when unseen)."""
        return self.collection_frequency.get(term, 0)

    def vocabulary(self) -> List[str]:
        return sorted(self.document_frequency)

    def idf(self, term: str) -> float:
        """InQuery normalized idf: log((N+0.5)/df) / log(N+1)."""
        n = self.document_count
        d = self.df(term)
        if n == 0 or d == 0:
            return 0.0
        return float(np.log((n + 0.5) / d) / np.log(n + 1.0))

    # ------------------------------------------------------------------
    # Physical bindings (for the flattening compiler)
    # ------------------------------------------------------------------
    def df_bat(self) -> BAT:
        """[term(str), df(int)] BAT used by compiled getBL plans."""
        pairs = sorted(self.document_frequency.items())
        return bat_from_pairs("str", "int", pairs)

    def mil_bindings(self, name: str) -> Dict[str, object]:
        """Environment variables the compiler expects for a stats
        parameter called *name*: ``<name>_df``, ``<name>_N``,
        ``<name>_avgdl``."""
        return {
            f"{name}_df": self.df_bat(),
            f"{name}_N": int(self.document_count),
            f"{name}_avgdl": float(self.average_document_length)
            if self.average_document_length > 0
            else 1.0,
        }
