"""Information-retrieval substrate of the Mirror DBMS.

The Mirror paper builds content management on the *inference network
retrieval model* ("the basis of the successful IR system InQuery",
section 3) adapted to multimedia.  This package supplies everything the
``CONTREP`` Moa structure needs:

* :mod:`repro.ir.tokenize` -- tokenizer + stopword list;
* :mod:`repro.ir.porter` -- the Porter stemmer, from scratch;
* :mod:`repro.ir.stats` -- global collection statistics (the ``stats``
  query parameter of the paper's ranking queries);
* :mod:`repro.ir.beliefs` -- document/term belief estimation (``getBL``);
* :mod:`repro.ir.operators` -- InQuery-style evidence combination
  (#sum, #wsum, #and, #or, #not, #max);
* :mod:`repro.ir.network` -- assembling and evaluating inference
  networks over a document collection;
* :mod:`repro.ir.index` -- an inverted file laid out as BATs;
* :mod:`repro.ir.queries` -- parser for structured #-operator queries.
"""

from repro.ir.beliefs import BeliefParameters, belief, beliefs_array, default_belief
from repro.ir.stats import CollectionStats
from repro.ir.tokenize import STOPWORDS, analyze, tokenize

__all__ = [
    "tokenize",
    "analyze",
    "STOPWORDS",
    "CollectionStats",
    "BeliefParameters",
    "belief",
    "beliefs_array",
    "default_belief",
]
