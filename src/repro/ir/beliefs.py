"""Belief estimation for the inference network retrieval model.

The CONTREP structure "supports the ranking scheme known as the
inference network retrieval model.  This retrieval model is the basis
of the successful IR system InQuery." (Mirror paper, section 3.)

In that model the belief that document *d* supports concept (term) *t*
is estimated from term frequency and inverse document frequency with
the default-belief smoothing of Turtle & Croft / InQuery:

.. math::

    bel(t|d) = \\alpha + (1 - \\alpha) \\cdot ntf \\cdot nidf

    ntf  = tf / (tf + 0.5 + 1.5 \\cdot dl / avgdl)

    nidf = \\log((N + 0.5) / df) / \\log(N + 1)

with default belief :math:`\\alpha = 0.4`.  ``getBL`` -- the operator
the paper's queries call -- returns, per document, the *belief list* of
the query terms found in that document.  Both the scalar reference
implementation (used by the Moa interpreter) and the vectorized one
(used by the compiled MIL plans through multiplexed BAT arithmetic)
live here, so the two execution paths share one formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

import numpy as np

from repro.ir.stats import CollectionStats


@dataclass(frozen=True)
class BeliefParameters:
    """Tunable constants of the InQuery belief function."""

    default_belief: float = 0.4
    tf_k: float = 0.5
    tf_doclen_weight: float = 1.5

    def __post_init__(self):
        if not 0.0 <= self.default_belief < 1.0:
            raise ValueError("default belief must be in [0, 1)")


DEFAULT_PARAMETERS = BeliefParameters()


def default_belief(params: BeliefParameters = DEFAULT_PARAMETERS) -> float:
    """Belief contributed by a term with no evidence in the document."""
    return params.default_belief


def normalized_tf(
    tf: float,
    doc_length: float,
    average_doc_length: float,
    params: BeliefParameters = DEFAULT_PARAMETERS,
) -> float:
    """InQuery/Okapi-style saturating term-frequency normalization."""
    if tf <= 0:
        return 0.0
    avg = average_doc_length if average_doc_length > 0 else 1.0
    return tf / (tf + params.tf_k + params.tf_doclen_weight * doc_length / avg)


def normalized_idf(document_count: int, document_frequency: int) -> float:
    """InQuery normalized idf in [0, 1]."""
    if document_count <= 0 or document_frequency <= 0:
        return 0.0
    return float(
        np.log((document_count + 0.5) / document_frequency)
        / np.log(document_count + 1.0)
    )


def belief(
    tf: float,
    doc_length: float,
    stats: CollectionStats,
    term: str,
    params: BeliefParameters = DEFAULT_PARAMETERS,
) -> float:
    """Scalar belief bel(term | document)."""
    ntf = normalized_tf(tf, doc_length, stats.average_document_length, params)
    nidf = normalized_idf(stats.document_count, stats.df(term))
    return params.default_belief + (1.0 - params.default_belief) * ntf * nidf


def beliefs_array(
    tfs: np.ndarray,
    doc_lengths: np.ndarray,
    dfs: np.ndarray,
    document_count: int,
    average_doc_length: float,
    params: BeliefParameters = DEFAULT_PARAMETERS,
) -> np.ndarray:
    """Vectorized belief computation over aligned posting arrays.

    This is the exact arithmetic the compiled MIL plans perform with
    multiplexed operators; factored out so tests can assert the two
    paths agree bitwise.
    """
    tfs = tfs.astype(np.float64)
    doc_lengths = doc_lengths.astype(np.float64)
    dfs = dfs.astype(np.float64)
    avg = average_doc_length if average_doc_length > 0 else 1.0
    ntf = tfs / (tfs + params.tf_k + params.tf_doclen_weight * doc_lengths / avg)
    with np.errstate(divide="ignore", invalid="ignore"):
        nidf = np.log((document_count + 0.5) / dfs) / np.log(document_count + 1.0)
    nidf = np.where(dfs > 0, nidf, 0.0)
    return params.default_belief + (1.0 - params.default_belief) * ntf * nidf


def belief_list(
    document: Mapping[str, int],
    doc_length: float,
    query_terms: Sequence[str],
    stats: CollectionStats,
    params: BeliefParameters = DEFAULT_PARAMETERS,
) -> List[float]:
    """Reference ``getBL``: beliefs of the query terms *present* in the
    document, one entry per matching (query term, posting) pair.

    Query terms absent from the document contribute nothing here --
    ranking by ``sum`` then effectively scores only matched terms, the
    set-at-a-time evaluation the Mirror DBMS performs physically.
    Duplicated query terms contribute once per occurrence (weighted
    queries by repetition).
    """
    out: List[float] = []
    for term in query_terms:
        tf = document.get(term, 0)
        if tf > 0:
            out.append(belief(tf, doc_length, stats, term, params))
    return out
