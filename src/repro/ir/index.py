"""Inverted file laid out as BATs.

This is the physical shape of a CONTREP attribute (the same four BATs
the Moa mapper registers in a buffer pool), packaged standalone so IR
code and the daemons can build and query content representations
without going through the logical layer:

* ``owner``  -- [void posting, doc-id]
* ``term``   -- [void posting, str]
* ``tf``     -- [void posting, int]
* ``doclen`` -- [void doc-id, int]

Document ids are dense 0..N-1, the per-collection oid discipline of
:mod:`repro.moa.mapping`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.ir.beliefs import BeliefParameters, DEFAULT_PARAMETERS, beliefs_array
from repro.ir.stats import CollectionStats
from repro.monet.bat import BAT, Column, VoidColumn
from repro.monet.bbp import BATBufferPool
from repro.monet import fragments
from repro.monet.fragments import map_fragments


class InvertedIndex:
    """Posting-list index over dense documents 0..N-1."""

    def __init__(self, documents: Sequence[Mapping[str, int]]):
        owners: List[int] = []
        terms: List[str] = []
        tfs: List[int] = []
        lengths: List[int] = []
        for doc_id, doc in enumerate(documents):
            length = 0
            for term, tf in sorted(doc.items()):
                if tf <= 0:
                    continue
                owners.append(doc_id)
                terms.append(term)
                tfs.append(int(tf))
                length += int(tf)
            lengths.append(length)
        self._owners = np.asarray(owners, dtype=np.int64)
        self._terms = np.array(terms, dtype=object)
        self._tfs = np.asarray(tfs, dtype=np.int64)
        self._lengths = np.asarray(lengths, dtype=np.int64)
        self.stats = CollectionStats.from_documents(documents)

    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        return len(self._lengths)

    @property
    def posting_count(self) -> int:
        return len(self._owners)

    def document_length(self, doc_id: int) -> int:
        return int(self._lengths[doc_id])

    def postings(self, term: str) -> List[Tuple[int, int]]:
        """(doc-id, tf) pairs for *term*, in doc order."""
        mask = self._terms == term
        return [
            (int(d), int(f))
            for d, f in zip(self._owners[mask], self._tfs[mask])
        ]

    # ------------------------------------------------------------------
    def term_beliefs(
        self,
        term: str,
        params: BeliefParameters = DEFAULT_PARAMETERS,
    ) -> np.ndarray:
        """Per-document belief vector for one term; documents without
        the term get the default belief."""
        out = np.full(self.document_count, params.default_belief)
        mask = self._terms == term
        if not mask.any():
            return out
        docs = self._owners[mask]
        tfs = self._tfs[mask]
        dfs = np.full(len(docs), self.stats.df(term), dtype=np.float64)
        values = beliefs_array(
            tfs,
            self._lengths[docs],
            dfs,
            self.stats.document_count,
            self.stats.average_document_length,
            params,
        )
        out[docs] = values
        return out

    def _score_posting_range(
        self,
        lo: int,
        hi: int,
        query_terms: Sequence[str],
        params: BeliefParameters,
    ) -> np.ndarray:
        """Per-document score vector contributed by postings [lo, hi)."""
        terms = self._terms[lo:hi]
        owners = self._owners[lo:hi]
        tfs = self._tfs[lo:hi]
        scores = np.zeros(self.document_count)
        for term in query_terms:
            mask = terms == term
            if not mask.any():
                continue
            docs = owners[mask]
            dfs = np.full(len(docs), self.stats.df(term), dtype=np.float64)
            values = beliefs_array(
                tfs[mask],
                self._lengths[docs],
                dfs,
                self.stats.document_count,
                self.stats.average_document_length,
                params,
            )
            np.add.at(scores, docs, values)
        return scores

    def score_sum(
        self,
        query_terms: Sequence[str],
        params: BeliefParameters = DEFAULT_PARAMETERS,
    ) -> np.ndarray:
        """Sum-of-matched-beliefs scores (the paper's ranking query):
        vectorized equivalent of ``map[sum(THIS)](map[getBL(...)](...))``."""
        return self._score_posting_range(0, self.posting_count, query_terms, params)

    def score_sum_parallel(
        self,
        query_terms: Sequence[str],
        params: BeliefParameters = DEFAULT_PARAMETERS,
        *,
        fragment_size: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> np.ndarray:
        """:meth:`score_sum` over horizontal posting fragments scored in
        parallel; partial per-document score vectors are summed.
        ``fragment_size=None`` resolves the module default at call time
        (so a :func:`repro.monet.fragments.set_default_tuning`
        calibration is picked up).

        Equivalent to :meth:`score_sum` up to floating-point addition
        order (each posting contributes exactly once).
        """
        if self.posting_count == 0 or not query_terms:
            return np.zeros(self.document_count)
        if fragment_size is None:
            fragment_size = fragments.DEFAULT_FRAGMENT_SIZE
        if fragment_size < 1:
            raise ValueError("fragment_size must be at least 1")
        chunks = [
            (lo, min(lo + fragment_size, self.posting_count))
            for lo in range(0, self.posting_count, fragment_size)
        ]
        partials = map_fragments(
            lambda chunk: self._score_posting_range(
                chunk[0], chunk[1], query_terms, params
            ),
            chunks,
            workers,
        )
        return np.sum(partials, axis=0)

    # ------------------------------------------------------------------
    def as_bats(self) -> Dict[str, BAT]:
        """The four CONTREP BATs."""
        return {
            "owner": BAT(VoidColumn(0, len(self._owners)), Column("oid", self._owners)),
            "term": BAT(VoidColumn(0, len(self._terms)), Column("str", self._terms)),
            "tf": BAT(VoidColumn(0, len(self._tfs)), Column("int", self._tfs)),
            "doclen": BAT(VoidColumn(0, len(self._lengths)), Column("int", self._lengths)),
        }

    def register(self, pool: BATBufferPool, prefix: str) -> None:
        """Register the four BATs under ``<prefix>.<name>``."""
        for name, bat in self.as_bats().items():
            pool.register(f"{prefix}.{name}", bat, replace=True)

    @classmethod
    def from_pool(cls, pool: BATBufferPool, prefix: str) -> "InvertedIndex":
        """Rebuild an index object from pool BATs (inverse of register)."""
        owner = pool.lookup(f"{prefix}.owner").tail_values()
        term = pool.lookup(f"{prefix}.term").tail_values()
        tf = pool.lookup(f"{prefix}.tf").tail_values()
        doclen = pool.lookup(f"{prefix}.doclen").tail_values()
        documents: List[Dict[str, int]] = [dict() for _ in range(len(doclen))]
        for i in range(len(owner)):
            documents[int(owner[i])][term[i]] = int(tf[i])
        return cls(documents)
