"""InQuery-style evidence combination operators.

The inference network "allows flexible modeling of the combination of
evidence originating from different sources" (Mirror paper, section 3).
Evidence enters as beliefs in [0, 1]; query nodes combine them:

=========  ==========================================================
``#sum``   mean of the children's beliefs
``#wsum``  weighted mean
``#and``   product (probabilistic AND)
``#or``    1 - prod(1 - b)  (noisy OR)
``#not``   1 - b
``#max``   maximum
=========  ==========================================================

Both scalar (reference) and vectorized (numpy, used by the network
evaluator) versions are provided.  The paper's demo ranks with the
plain sum of belief lists (``map[sum(THIS)]``); the full operator set
supports the "combination of evidence" claims and the thesaurus-based
query formulation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_EPS = 1e-12


def combine_sum(beliefs: Sequence[float]) -> float:
    """#sum: mean belief (InQuery's sum operator averages)."""
    values = list(beliefs)
    if not values:
        return 0.0
    return float(sum(values) / len(values))


def combine_wsum(beliefs: Sequence[float], weights: Sequence[float]) -> float:
    """#wsum: weighted mean belief."""
    values = list(beliefs)
    ws = list(weights)
    if len(values) != len(ws):
        raise ValueError("wsum needs one weight per belief")
    total = sum(ws)
    if total <= 0:
        return 0.0
    return float(sum(b * w for b, w in zip(values, ws)) / total)


def combine_and(beliefs: Sequence[float]) -> float:
    """#and: product of beliefs."""
    out = 1.0
    for b in beliefs:
        out *= b
    return float(out)


def combine_or(beliefs: Sequence[float]) -> float:
    """#or: noisy-OR."""
    out = 1.0
    for b in beliefs:
        out *= 1.0 - b
    return float(1.0 - out)


def combine_not(belief: float) -> float:
    """#not: complement."""
    return float(1.0 - belief)


def combine_max(beliefs: Sequence[float]) -> float:
    """#max: strongest single evidence."""
    values = list(beliefs)
    return float(max(values)) if values else 0.0


# ----------------------------------------------------------------------
# Vectorized versions: each operand is an array of per-document beliefs.
# ----------------------------------------------------------------------


def array_sum(operands: Sequence[np.ndarray]) -> np.ndarray:
    ops = _stack(operands)
    return ops.mean(axis=0)


def array_wsum(operands: Sequence[np.ndarray], weights: Sequence[float]) -> np.ndarray:
    ops = _stack(operands)
    w = np.asarray(list(weights), dtype=np.float64)
    if len(w) != ops.shape[0]:
        raise ValueError("wsum needs one weight per operand")
    total = w.sum()
    if total <= 0:
        return np.zeros(ops.shape[1])
    return (ops * w[:, None]).sum(axis=0) / total


def array_and(operands: Sequence[np.ndarray]) -> np.ndarray:
    ops = _stack(operands)
    return np.prod(ops, axis=0)


def array_or(operands: Sequence[np.ndarray]) -> np.ndarray:
    ops = _stack(operands)
    return 1.0 - np.prod(1.0 - ops, axis=0)


def array_not(operand: np.ndarray) -> np.ndarray:
    return 1.0 - np.asarray(operand, dtype=np.float64)


def array_max(operands: Sequence[np.ndarray]) -> np.ndarray:
    ops = _stack(operands)
    return ops.max(axis=0)


def _stack(operands: Sequence[np.ndarray]) -> np.ndarray:
    if not operands:
        raise ValueError("operator needs at least one operand")
    arrays = [np.asarray(op, dtype=np.float64) for op in operands]
    length = len(arrays[0])
    for arr in arrays[1:]:
        if len(arr) != length:
            raise ValueError("operand length mismatch")
    return np.stack(arrays, axis=0)
