"""Tokenization and stopping for CONTREP text representations.

``analyze`` is the full InQuery-style pipeline the CONTREP mapper uses:
lowercase -> split on non-alphanumerics -> drop stopwords -> Porter
stem.  Cluster labels produced by the multimedia pipeline (e.g.
``gabor_21``, treated "as if they are words in text retrieval",
section 5.2) pass through unchanged because they contain an underscore
and digits -- the analyzer never mangles non-linguistic tokens.
"""

from __future__ import annotations

import re
from typing import List, Optional, Set

from repro.ir.porter import stem

#: A compact version of the classic van Rijsbergen / SMART stop list;
#: enough to keep the paper's example annotations clean.
STOPWORDS: Set[str] = {
    "a", "about", "above", "after", "again", "against", "all", "am", "an",
    "and", "any", "are", "as", "at", "be", "because", "been", "before",
    "being", "below", "between", "both", "but", "by", "can", "cannot",
    "could", "did", "do", "does", "doing", "down", "during", "each", "few",
    "for", "from", "further", "had", "has", "have", "having", "he", "her",
    "here", "hers", "him", "his", "how", "i", "if", "in", "into", "is",
    "it", "its", "itself", "just", "me", "more", "most", "my", "myself",
    "no", "nor", "not", "now", "of", "off", "on", "once", "only", "or",
    "other", "our", "ours", "out", "over", "own", "same", "she", "should",
    "so", "some", "such", "than", "that", "the", "their", "theirs", "them",
    "then", "there", "these", "they", "this", "those", "through", "to",
    "too", "under", "until", "up", "very", "was", "we", "were", "what",
    "when", "where", "which", "while", "who", "whom", "why", "will",
    "with", "would", "you", "your", "yours",
}

_TOKEN_RE = re.compile(r"[a-z0-9_]+")
_LINGUISTIC_RE = re.compile(r"^[a-z]+$")


def tokenize(text: str) -> List[str]:
    """Lowercase and split *text* into raw tokens (no stopping/stemming)."""
    return _TOKEN_RE.findall(text.lower())


def analyze(
    text: str,
    *,
    stopwords: Optional[Set[str]] = None,
    stemming: bool = True,
) -> List[str]:
    """Full analysis pipeline: tokenize, stop, stem.

    Tokens that are not purely alphabetic (cluster labels like
    ``rgb_3``, numbers) are passed through verbatim -- they are already
    canonical "words" of the multimedia vocabulary.
    """
    stops = STOPWORDS if stopwords is None else stopwords
    out: List[str] = []
    for token in tokenize(text):
        if token in stops:
            continue
        if stemming and _LINGUISTIC_RE.match(token):
            token = stem(token)
            if token in stops:
                continue
        out.append(token)
    return out


def analyze_terms(tokens: List[str], *, stemming: bool = True) -> List[str]:
    """Analyze an already-tokenized list (used for query terms)."""
    return analyze(" ".join(tokens), stemming=stemming)
