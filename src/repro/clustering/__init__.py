"""Clustering substrate: the AutoClass substitute and baselines.

"These feature spaces are then clustered using the public domain
clustering package AutoClass [CS95]."  (Mirror paper, section 5.1.)

AutoClass is Bayesian mixture-model classification; our substitute
(:mod:`repro.clustering.autoclass`) implements a diagonal-Gaussian
finite mixture fitted with EM plus Bayesian model selection over the
number of classes.  :mod:`repro.clustering.kmeans` is the baseline for
the clustering ablation (bench E8), and
:mod:`repro.clustering.assignments` turns fitted clusters into the
"visual words" (``gabor_21``-style labels) that the CONTREP image
representation indexes.
"""

from repro.clustering.autoclass import AutoClass, AutoClassModel
from repro.clustering.assignments import ClusterVocabulary
from repro.clustering.kmeans import KMeans

__all__ = ["AutoClass", "AutoClassModel", "KMeans", "ClusterVocabulary"]
