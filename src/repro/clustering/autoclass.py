"""AutoClass substitute: Bayesian mixture classification.

AutoClass [CS95] models data as a finite mixture; it searches over the
number of classes by (approximate) marginal likelihood and returns soft
class memberships.  This reproduction implements the continuous-
attribute case the Mirror demo needs (feature vectors from the colour
and texture daemons):

* diagonal-Gaussian mixture, fitted with EM (k-means++ initialized);
* variance floors (AutoClass's "minimum relative error" trick) so
  degenerate clusters cannot blow up the likelihood;
* model selection over a class-count range via BIC, an established
  approximation to the marginal likelihood AutoClass maximizes.

The fitted model assigns every vector a class id -- the "identified
clusters ... used as if they are words in text retrieval" (section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.clustering.kmeans import KMeans

_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass
class AutoClassModel:
    """A fitted mixture: weights, means, variances, and fit metadata."""

    weights: np.ndarray  # (k,)
    means: np.ndarray  # (k, d)
    variances: np.ndarray  # (k, d)
    log_likelihood: float
    bic: float
    iterations: int

    @property
    def n_classes(self) -> int:
        return len(self.weights)

    # ------------------------------------------------------------------
    def log_responsibilities(self, data: np.ndarray) -> np.ndarray:
        """(n, k) log posterior class memberships."""
        log_joint = self._log_joint(np.asarray(data, dtype=np.float64))
        norm = _logsumexp(log_joint, axis=1, keepdims=True)
        return log_joint - norm

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Hard class assignment (argmax posterior)."""
        return self._log_joint(np.asarray(data, dtype=np.float64)).argmax(axis=1)

    def score(self, data: np.ndarray) -> float:
        """Total log likelihood of *data* under the model."""
        log_joint = self._log_joint(np.asarray(data, dtype=np.float64))
        return float(_logsumexp(log_joint, axis=1).sum())

    def _log_joint(self, data: np.ndarray) -> np.ndarray:
        n, d = data.shape
        k = self.n_classes
        out = np.empty((n, k))
        for j in range(k):
            diff = data - self.means[j]
            var = self.variances[j]
            out[:, j] = (
                np.log(self.weights[j])
                - 0.5 * (d * _LOG_2PI + np.log(var).sum())
                - 0.5 * ((diff**2) / var).sum(axis=1)
            )
        return out


class AutoClass:
    """Searches class counts and fits the best Bayesian mixture."""

    def __init__(
        self,
        min_classes: int = 2,
        max_classes: int = 12,
        *,
        max_iterations: int = 60,
        tolerance: float = 1e-5,
        variance_floor: float = 1e-4,
        seed: int = 0,
    ):
        if min_classes < 1 or max_classes < min_classes:
            raise ValueError("need 1 <= min_classes <= max_classes")
        self.min_classes = min_classes
        self.max_classes = max_classes
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.variance_floor = variance_floor
        self.seed = seed

    # ------------------------------------------------------------------
    def fit(self, data: np.ndarray) -> AutoClassModel:
        """Model-selection search: fit every class count in range, keep
        the best BIC (the AutoClass marginal-likelihood surrogate)."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or len(data) == 0:
            raise ValueError("data must be a non-empty (n, d) matrix")
        best: Optional[AutoClassModel] = None
        upper = min(self.max_classes, len(data))
        for k in range(self.min_classes, upper + 1):
            model = self.fit_fixed(data, k)
            if best is None or model.bic > best.bic:
                best = model
        assert best is not None
        return best

    def fit_fixed(self, data: np.ndarray, n_classes: int) -> AutoClassModel:
        """EM for a fixed class count."""
        data = np.asarray(data, dtype=np.float64)
        n, d = data.shape
        k = min(n_classes, n)
        init = KMeans(k, seed=self.seed).fit(data)
        means = init.centers.copy()
        variances = np.maximum(data.var(axis=0), self.variance_floor)
        variances = np.tile(variances, (k, 1))
        weights = np.full(k, 1.0 / k)
        model = AutoClassModel(weights, means, variances, -np.inf, -np.inf, 0)
        previous = -np.inf
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            # E step
            log_joint = model._log_joint(data)
            log_norm = _logsumexp(log_joint, axis=1, keepdims=True)
            log_likelihood = float(log_norm.sum())
            responsibilities = np.exp(log_joint - log_norm)
            # M step
            mass = responsibilities.sum(axis=0) + 1e-12
            weights = mass / mass.sum()
            means = (responsibilities.T @ data) / mass[:, None]
            variances = np.empty_like(means)
            for j in range(k):
                diff = data - means[j]
                variances[j] = (responsibilities[:, j][:, None] * diff**2).sum(
                    axis=0
                ) / mass[j]
            variances = np.maximum(variances, self.variance_floor)
            model = AutoClassModel(
                weights, means, variances, log_likelihood, -np.inf, iterations
            )
            if abs(log_likelihood - previous) < self.tolerance * max(
                1.0, abs(previous)
            ):
                break
            previous = log_likelihood
        # Parameter count: weights (k-1) + means (k*d) + variances (k*d).
        parameters = (k - 1) + 2 * k * d
        bic = model.log_likelihood - 0.5 * parameters * np.log(n)
        return AutoClassModel(
            model.weights,
            model.means,
            model.variances,
            model.log_likelihood,
            float(bic),
            iterations,
        )


def _logsumexp(a: np.ndarray, axis: int, keepdims: bool = False) -> np.ndarray:
    peak = a.max(axis=axis, keepdims=True)
    out = np.log(np.exp(a - peak).sum(axis=axis, keepdims=True)) + peak
    if not keepdims:
        out = np.squeeze(out, axis=axis)
    return out
