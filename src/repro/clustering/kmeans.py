"""k-means clustering with k-means++ seeding.

Used (a) as the initialization of the AutoClass EM, and (b) as the
baseline of the clustering benchmark E8 -- the design-choice ablation
"AutoClass vs. a simpler clusterer" that DESIGN.md calls out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class KMeansResult:
    centers: np.ndarray  # (k, d)
    labels: np.ndarray  # (n,)
    inertia: float
    iterations: int

    @property
    def n_classes(self) -> int:
        return len(self.centers)

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Nearest-center assignment for new vectors."""
        data = np.asarray(data, dtype=np.float64)
        return _pairwise_sq(data, self.centers).argmin(axis=1)


class KMeans:
    """Lloyd's algorithm with k-means++ initialization."""

    def __init__(
        self,
        n_clusters: int,
        *,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        seed: int = 0,
    ):
        if n_clusters < 1:
            raise ValueError("n_clusters must be positive")
        self.n_clusters = n_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed

    # ------------------------------------------------------------------
    def fit(self, data: np.ndarray) -> KMeansResult:
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ValueError("data must be (n, d)")
        n, _ = data.shape
        k = min(self.n_clusters, n)
        rng = np.random.default_rng(self.seed)
        centers = self._plus_plus_init(data, k, rng)
        labels = np.zeros(n, dtype=np.int64)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            distances = _pairwise_sq(data, centers)
            labels = distances.argmin(axis=1)
            new_centers = centers.copy()
            for j in range(k):
                members = data[labels == j]
                if len(members):
                    new_centers[j] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest point.
                    farthest = distances.min(axis=1).argmax()
                    new_centers[j] = data[farthest]
            shift = float(np.abs(new_centers - centers).max())
            centers = new_centers
            if shift < self.tolerance:
                break
        inertia = float(_pairwise_sq(data, centers).min(axis=1).sum())
        return KMeansResult(centers, labels, inertia, iterations)

    @staticmethod
    def _plus_plus_init(
        data: np.ndarray, k: int, rng: np.random.Generator
    ) -> np.ndarray:
        n = len(data)
        centers = np.empty((k, data.shape[1]))
        first = int(rng.integers(n))
        centers[0] = data[first]
        closest = ((data - centers[0]) ** 2).sum(axis=1)
        for j in range(1, k):
            total = closest.sum()
            if total <= 0:
                centers[j:] = data[rng.integers(n, size=k - j)]
                break
            probabilities = closest / total
            choice = int(rng.choice(n, p=probabilities))
            centers[j] = data[choice]
            closest = np.minimum(closest, ((data - centers[j]) ** 2).sum(axis=1))
        return centers


def _pairwise_sq(data: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """(n, k) squared Euclidean distances."""
    return (
        (data**2).sum(axis=1, keepdims=True)
        - 2.0 * data @ centers.T
        + (centers**2).sum(axis=1)
    )
