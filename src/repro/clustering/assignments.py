"""From clusters to "visual words".

"We further use the identified clusters as if they are words in text
retrieval; they become the basic blocks of 'meaning' for multimedia
information retrieval."  (Mirror paper, section 5.2.)

:class:`ClusterVocabulary` wraps one fitted clusterer per feature space
and renders assignments as tokens like ``gabor_21`` -- exactly the
cluster-label style the paper shows.  A document's (image's) content
representation is the bag of tokens of its segments across all feature
spaces, ready to be indexed by a ``CONTREP<Image>`` attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence

import numpy as np


@dataclass
class ClusterVocabulary:
    """Token namespace for one feature space (e.g. prefix ``gabor``)."""

    prefix: str
    model: object  # anything with .predict(data) -> labels

    def token(self, label: int) -> str:
        return f"{self.prefix}_{int(label)}"

    def tokens(self, data: np.ndarray) -> List[str]:
        """Tokens for a batch of feature vectors."""
        labels = self.model.predict(np.asarray(data, dtype=np.float64))
        return [self.token(label) for label in labels]


def document_tokens(
    vocabularies: Sequence[ClusterVocabulary],
    features_per_space: Mapping[str, np.ndarray],
) -> List[str]:
    """Bag of visual words for one document.

    *features_per_space* maps vocabulary prefix -> (n_segments, d)
    matrix of that document's segment features.
    """
    out: List[str] = []
    for vocabulary in vocabularies:
        features = features_per_space.get(vocabulary.prefix)
        if features is None or len(features) == 0:
            continue
        out.extend(vocabulary.tokens(np.atleast_2d(features)))
    return out


def vocabulary_size(vocabularies: Sequence[ClusterVocabulary]) -> int:
    """Total number of distinct visual words across the spaces."""
    total = 0
    for vocabulary in vocabularies:
        n = getattr(vocabulary.model, "n_classes", None)
        if n is None:
            centers = getattr(vocabulary.model, "centers", None)
            n = len(centers) if centers is not None else 0
        total += int(n)
    return total
